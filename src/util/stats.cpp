#include "stats.hpp"

#include <algorithm>
#include <cmath>

#include "logging.hpp"

namespace culpeo::util {

void
Summary::add(double sample)
{
    samples_.push_back(sample);
    sorted_valid_ = false;
}

double
Summary::mean() const
{
    log::fatalIf(samples_.empty(), "Summary::mean on empty summary");
    double total = 0.0;
    for (double s : samples_)
        total += s;
    return total / double(samples_.size());
}

double
Summary::stddev() const
{
    if (samples_.size() < 2)
        return 0.0;
    const double m = mean();
    double accum = 0.0;
    for (double s : samples_)
        accum += (s - m) * (s - m);
    return std::sqrt(accum / double(samples_.size() - 1));
}

double
Summary::min() const
{
    log::fatalIf(samples_.empty(), "Summary::min on empty summary");
    return *std::min_element(samples_.begin(), samples_.end());
}

double
Summary::max() const
{
    log::fatalIf(samples_.empty(), "Summary::max on empty summary");
    return *std::max_element(samples_.begin(), samples_.end());
}

double
Summary::sum() const
{
    double total = 0.0;
    for (double s : samples_)
        total += s;
    return total;
}

const std::vector<double> &
Summary::sorted() const
{
    if (!sorted_valid_) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        sorted_valid_ = true;
    }
    return sorted_;
}

double
Summary::percentile(double p) const
{
    log::fatalIf(samples_.empty(), "Summary::percentile on empty summary");
    log::fatalIf(p < 0.0 || p > 100.0, "percentile out of range: ", p);
    const auto &data = sorted();
    if (data.size() == 1)
        return data.front();
    const double rank = p / 100.0 * double(data.size() - 1);
    const auto lo = std::size_t(rank);
    const auto hi = std::min(lo + 1, data.size() - 1);
    const double frac = rank - double(lo);
    return data[lo] * (1.0 - frac) + data[hi] * frac;
}

double
fraction(std::size_t hits, std::size_t total)
{
    if (total == 0)
        return 0.0;
    return double(hits) / double(total);
}

} // namespace culpeo::util
