/**
 * @file
 * Descriptive statistics accumulator used by benchmarks and the test
 * harness to summarize repeated trials.
 */

#ifndef CULPEO_UTIL_STATS_HPP
#define CULPEO_UTIL_STATS_HPP

#include <cstddef>
#include <vector>

namespace culpeo::util {

/**
 * Collects samples and reports mean / stddev / min / max / percentiles.
 * Samples are stored, so percentile queries are exact.
 */
class Summary
{
  public:
    void add(double sample);

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double mean() const;
    /** Sample standard deviation (n-1 denominator); 0 for n < 2. */
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const;

    /**
     * Exact percentile by linear interpolation between closest ranks.
     * @param p percentile in [0, 100].
     */
    double percentile(double p) const;
    double median() const { return percentile(50.0); }

    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sorted_valid_ = false;

    const std::vector<double> &sorted() const;
};

/** Fraction (0..1) of samples satisfying a predicate-style count. */
double fraction(std::size_t hits, std::size_t total);

} // namespace culpeo::util

#endif // CULPEO_UTIL_STATS_HPP
