/**
 * @file
 * Strongly typed physical quantities used throughout the Culpeo
 * reproduction: volts, amps, ohms, farads, seconds, joules, watts,
 * coulombs and hertz.
 *
 * Each quantity wraps a double in SI base units. Same-type arithmetic and
 * comparisons are always available; cross-type operators are defined only
 * where physically meaningful (e.g. Volts / Ohms = Amps). The .value()
 * accessor exposes the raw double for dense numeric kernels.
 */

#ifndef CULPEO_UTIL_UNITS_HPP
#define CULPEO_UTIL_UNITS_HPP

#include <cmath>
#include <compare>
#include <ostream>

namespace culpeo::units {

/**
 * Generic strongly typed quantity. Tag types make each physical dimension
 * a distinct C++ type so that, e.g., a time cannot be passed where a
 * voltage is expected.
 */
template <typename Tag>
class Quantity
{
  public:
    constexpr Quantity() = default;
    constexpr explicit Quantity(double value) : value_(value) {}

    /** Raw value in SI base units. */
    constexpr double value() const { return value_; }

    constexpr Quantity operator+(Quantity other) const
    {
        return Quantity(value_ + other.value_);
    }
    constexpr Quantity operator-(Quantity other) const
    {
        return Quantity(value_ - other.value_);
    }
    constexpr Quantity operator-() const { return Quantity(-value_); }
    constexpr Quantity operator*(double scale) const
    {
        return Quantity(value_ * scale);
    }
    constexpr Quantity operator/(double scale) const
    {
        return Quantity(value_ / scale);
    }
    /** Ratio of two same-dimension quantities is dimensionless. */
    constexpr double operator/(Quantity other) const
    {
        return value_ / other.value_;
    }

    constexpr Quantity &operator+=(Quantity other)
    {
        value_ += other.value_;
        return *this;
    }
    constexpr Quantity &operator-=(Quantity other)
    {
        value_ -= other.value_;
        return *this;
    }
    constexpr Quantity &operator*=(double scale)
    {
        value_ *= scale;
        return *this;
    }

    constexpr auto operator<=>(const Quantity &) const = default;

  private:
    double value_ = 0.0;
};

template <typename Tag>
constexpr Quantity<Tag>
operator*(double scale, Quantity<Tag> q)
{
    return q * scale;
}

template <typename Tag>
std::ostream &
operator<<(std::ostream &os, Quantity<Tag> q)
{
    return os << q.value();
}

struct VoltTag {};
struct AmpTag {};
struct OhmTag {};
struct FaradTag {};
struct SecondTag {};
struct JouleTag {};
struct WattTag {};
struct CoulombTag {};
struct HertzTag {};

using Volts = Quantity<VoltTag>;
using Amps = Quantity<AmpTag>;
using Ohms = Quantity<OhmTag>;
using Farads = Quantity<FaradTag>;
using Seconds = Quantity<SecondTag>;
using Joules = Quantity<JouleTag>;
using Watts = Quantity<WattTag>;
using Coulombs = Quantity<CoulombTag>;
using Hertz = Quantity<HertzTag>;

// Ohm's law.
constexpr Amps
operator/(Volts v, Ohms r)
{
    return Amps(v.value() / r.value());
}
constexpr Volts
operator*(Amps i, Ohms r)
{
    return Volts(i.value() * r.value());
}
constexpr Volts
operator*(Ohms r, Amps i)
{
    return i * r;
}
constexpr Ohms
resistanceOf(Volts v, Amps i)
{
    return Ohms(v.value() / i.value());
}

// Power.
constexpr Watts
operator*(Volts v, Amps i)
{
    return Watts(v.value() * i.value());
}
constexpr Watts
operator*(Amps i, Volts v)
{
    return v * i;
}
constexpr Amps
operator/(Watts p, Volts v)
{
    return Amps(p.value() / v.value());
}
constexpr Volts
operator/(Watts p, Amps i)
{
    return Volts(p.value() / i.value());
}

// Energy.
constexpr Joules
operator*(Watts p, Seconds t)
{
    return Joules(p.value() * t.value());
}
constexpr Joules
operator*(Seconds t, Watts p)
{
    return p * t;
}
constexpr Watts
operator/(Joules e, Seconds t)
{
    return Watts(e.value() / t.value());
}
constexpr Seconds
operator/(Joules e, Watts p)
{
    return Seconds(e.value() / p.value());
}

// Charge.
constexpr Coulombs
operator*(Amps i, Seconds t)
{
    return Coulombs(i.value() * t.value());
}
constexpr Coulombs
operator*(Seconds t, Amps i)
{
    return i * t;
}
constexpr Amps
operator/(Coulombs q, Seconds t)
{
    return Amps(q.value() / t.value());
}
constexpr Coulombs
operator*(Farads c, Volts v)
{
    return Coulombs(c.value() * v.value());
}
constexpr Volts
operator/(Coulombs q, Farads c)
{
    return Volts(q.value() / c.value());
}

// Frequency.
constexpr Hertz
frequencyOf(Seconds period)
{
    return Hertz(1.0 / period.value());
}
constexpr Seconds
periodOf(Hertz f)
{
    return Seconds(1.0 / f.value());
}

/** Energy stored in an ideal capacitor at open-circuit voltage v. */
constexpr Joules
capacitorEnergy(Farads c, Volts v)
{
    return Joules(0.5 * c.value() * v.value() * v.value());
}

/**
 * Open-circuit voltage of an ideal capacitor holding energy e.
 * Returns 0 V for non-positive energies.
 */
inline Volts
capacitorVoltage(Farads c, Joules e)
{
    if (e.value() <= 0.0)
        return Volts(0.0);
    return Volts(std::sqrt(2.0 * e.value() / c.value()));
}

namespace literals {

// NOLINTBEGIN(google-runtime-int) — UDL signature mandates long double.
constexpr Volts operator""_V(long double v) { return Volts(double(v)); }
constexpr Volts operator""_mV(long double v) { return Volts(double(v) * 1e-3); }
constexpr Amps operator""_A(long double v) { return Amps(double(v)); }
constexpr Amps operator""_mA(long double v) { return Amps(double(v) * 1e-3); }
constexpr Amps operator""_uA(long double v) { return Amps(double(v) * 1e-6); }
constexpr Amps operator""_nA(long double v) { return Amps(double(v) * 1e-9); }
constexpr Ohms operator""_Ohm(long double v) { return Ohms(double(v)); }
constexpr Ohms operator""_mOhm(long double v) { return Ohms(double(v) * 1e-3); }
constexpr Farads operator""_F(long double v) { return Farads(double(v)); }
constexpr Farads operator""_mF(long double v) { return Farads(double(v) * 1e-3); }
constexpr Farads operator""_uF(long double v) { return Farads(double(v) * 1e-6); }
constexpr Seconds operator""_s(long double v) { return Seconds(double(v)); }
constexpr Seconds operator""_ms(long double v) { return Seconds(double(v) * 1e-3); }
constexpr Seconds operator""_us(long double v) { return Seconds(double(v) * 1e-6); }
constexpr Joules operator""_J(long double v) { return Joules(double(v)); }
constexpr Joules operator""_mJ(long double v) { return Joules(double(v) * 1e-3); }
constexpr Joules operator""_uJ(long double v) { return Joules(double(v) * 1e-6); }
constexpr Watts operator""_W(long double v) { return Watts(double(v)); }
constexpr Watts operator""_mW(long double v) { return Watts(double(v) * 1e-3); }
constexpr Watts operator""_uW(long double v) { return Watts(double(v) * 1e-6); }
constexpr Watts operator""_nW(long double v) { return Watts(double(v) * 1e-9); }
constexpr Hertz operator""_Hz(long double v) { return Hertz(double(v)); }
constexpr Hertz operator""_kHz(long double v) { return Hertz(double(v) * 1e3); }
// NOLINTEND(google-runtime-int)

} // namespace literals

} // namespace culpeo::units

#endif // CULPEO_UTIL_UNITS_HPP
