/** @file Unit tests for the three evaluation application specs. */

#include <gtest/gtest.h>

#include "apps/apps.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using apps::noiseMonitoring;
using apps::periodicSensing;
using apps::responsiveReporting;

TEST(Apps, SmallBufferScalesWithPartCount)
{
    const auto small = apps::smallBufferConfig();
    const auto big = sim::capybaraConfig();
    EXPECT_NEAR(small.capacitor.capacitance.value(), 15e-3, 1e-12);
    // A third of the parts: three times the resistance everywhere.
    EXPECT_NEAR(small.capacitor.series_esr.value(),
                3.0 * big.capacitor.series_esr.value(), 1e-9);
    EXPECT_NEAR(small.capacitor.sustainedEsr().value(),
                3.0 * big.capacitor.sustainedEsr().value(), 0.1);
}

TEST(Apps, PeriodicSensingShape)
{
    const auto app = periodicSensing();
    EXPECT_EQ(app.events.size(), 1u);
    EXPECT_EQ(app.events[0].arrival, sched::Arrival::Periodic);
    EXPECT_DOUBLE_EQ(app.events[0].interval.value(), 4.5);
    EXPECT_DOUBLE_EQ(app.events[0].deadline.value(), 4.5);
    EXPECT_EQ(app.events[0].chain.size(), 1u);
    ASSERT_TRUE(app.background.has_value());
    // PS uses the 15 mF buffer (Section VI-B).
    EXPECT_NEAR(app.power.capacitor.capacitance.value(), 15e-3, 1e-12);
}

TEST(Apps, PeriodicSensingHonorsRequestedPeriod)
{
    const auto app = periodicSensing(Seconds(3.0));
    EXPECT_DOUBLE_EQ(app.events[0].interval.value(), 3.0);
    EXPECT_DOUBLE_EQ(app.events[0].deadline.value(), 3.0);
}

TEST(Apps, ResponsiveReportingShape)
{
    const auto app = responsiveReporting();
    ASSERT_EQ(app.events.size(), 1u);
    const auto &report = app.events[0];
    EXPECT_EQ(report.arrival, sched::Arrival::Poisson);
    EXPECT_DOUBLE_EQ(report.interval.value(), 45.0);
    EXPECT_DOUBLE_EQ(report.deadline.value(), 3.0);
    // Sense -> encrypt -> BLE send + listen.
    ASSERT_EQ(report.chain.size(), 3u);
    EXPECT_EQ(report.chain[0].name, "imu_read");
    EXPECT_EQ(report.chain[1].name, "encrypt");
    EXPECT_EQ(report.chain[2].name, "ble_send_listen");
    // The BLE task carries its 2 s listen window.
    EXPECT_GT(report.chain[2].profile.duration().value(), 2.0);
}

TEST(Apps, NoiseMonitoringShape)
{
    const auto app = noiseMonitoring();
    ASSERT_EQ(app.events.size(), 2u);
    EXPECT_EQ(app.events[0].name, "mic");
    EXPECT_EQ(app.events[0].arrival, sched::Arrival::Periodic);
    EXPECT_DOUBLE_EQ(app.events[0].interval.value(), 7.0);
    EXPECT_EQ(app.events[1].name, "ble");
    EXPECT_EQ(app.events[1].arrival, sched::Arrival::Poisson);
    EXPECT_DOUBLE_EQ(app.events[1].interval.value(), 30.0);
    EXPECT_DOUBLE_EQ(app.events[1].deadline.value(), 15.0);
    ASSERT_TRUE(app.background.has_value());
    EXPECT_EQ(app.background->name, "fft");
}

TEST(Apps, TaskIdsAreUniqueWithinEachApp)
{
    for (const auto &app : {periodicSensing(), responsiveReporting(),
                            noiseMonitoring()}) {
        std::vector<core::TaskId> ids;
        for (const auto &event : app.events)
            for (const auto &task : event.chain)
                ids.push_back(task.id);
        if (app.background.has_value())
            ids.push_back(app.background->id);
        std::sort(ids.begin(), ids.end());
        EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end())
            << "duplicate task id in " << app.name;
    }
}

TEST(Apps, AllAppsHaveWeakButPositiveHarvest)
{
    for (const auto &app : {periodicSensing(), responsiveReporting(),
                            noiseMonitoring()}) {
        EXPECT_GT(app.harvest.value(), 0.0);
        EXPECT_LT(app.harvest.value(), 50e-3)
            << app.name << " should model a weak solar harvester";
    }
}

} // namespace
