/**
 * @file
 * Deterministic divergence edge cases for the SoA batch engine: the
 * lockstep kernel's fallback machinery (reference Euler steps, scalar
 * peels, re-admission at segment boundaries) exercised at its corners
 * and compared against the sim::Device reference in exact-replay mode.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "batch/engine.hpp"
#include "sim/power_system.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;

constexpr double kExactTol = 1e-9;

load::CurrentProfile
pulse(Amps current, Seconds duration)
{
    return load::CurrentProfile("pulse", {{duration, current}});
}

void
expectExactLane(const batch::LaneResult &kernel,
                const batch::LaneResult &scalar, const std::string &what)
{
    ASSERT_EQ(kernel.ops.size(), scalar.ops.size()) << what;
    for (std::size_t o = 0; o < kernel.ops.size(); ++o) {
        const batch::OpOutcome &k = kernel.ops[o];
        const batch::OpOutcome &s = scalar.ops[o];
        const std::string where = what + " op " + std::to_string(o);
        EXPECT_EQ(int(k.wait_status), int(s.wait_status)) << where;
        EXPECT_EQ(k.completed, s.completed) << where;
        EXPECT_EQ(k.power_failed, s.power_failed) << where;
        EXPECT_EQ(k.collapsed, s.collapsed) << where;
        EXPECT_EQ(k.diagnostic, s.diagnostic) << where;
        EXPECT_NEAR(k.voltage.value(), s.voltage.value(), kExactTol) << where;
        EXPECT_NEAR(k.vmin.value(), s.vmin.value(), kExactTol) << where;
        EXPECT_NEAR(k.elapsed.value(), s.elapsed.value(),
                    kExactTol * std::max(1.0, s.elapsed.value()))
            << where;
    }
    EXPECT_EQ(kernel.power_failures, scalar.power_failures) << what;
    EXPECT_NEAR(kernel.vend.value(), scalar.vend.value(), kExactTol) << what;
}

batch::BatchOptions
exactOptions()
{
    batch::BatchOptions options;
    options.exact_replay = true;
    return options;
}

/**
 * Every lane starts barely above Voff under a heavy pulse: the whole
 * batch diverges (monitor crossing + possible collapse) inside the
 * very first segment, so no closed-form commit ever lands and the
 * kernel lives entirely on its reference-step fallback.
 */
TEST(BatchDivergence, AllLanesDivergeInFirstSegment)
{
    const load::CurrentProfile heavy = pulse(Amps(60e-3), Seconds(40e-3));
    std::vector<batch::LaneSpec> specs;
    for (int l = 0; l < 4; ++l) {
        batch::LaneSpec spec;
        spec.config = sim::capybaraConfig();
        spec.vstart =
            Volts(spec.config.monitor.voff.value() + 0.005 + 0.004 * l);
        spec.program = {
            batch::LaneOp::runProfile(&heavy, Seconds(50e-6)),
            // Post-failure recovery exercises re-admission: the lanes
            // rejoin the lockstep at the next op boundary.
            batch::LaneOp::waitLevel(Volts(spec.config.monitor.vhigh),
                                     Seconds(5.0)),
        };
        spec.harvest = Watts(2e-3);
        specs.push_back(std::move(spec));
    }
    const std::vector<batch::LaneResult> kernel =
        batch::runPopulation(specs, exactOptions());
    bool any_failed = false;
    for (std::size_t l = 0; l < specs.size(); ++l) {
        expectExactLane(kernel[l], batch::runLaneScalar(specs[l]),
                        "lane " + std::to_string(l));
        any_failed = any_failed || kernel[l].ops[0].power_failed;
    }
    EXPECT_TRUE(any_failed) << "scenario must actually brown out";
}

/** A batch of one lane takes every lockstep path with no peers. */
TEST(BatchDivergence, SingleLaneBatch)
{
    const load::CurrentProfile work = pulse(Amps(15e-3), Seconds(10e-3));
    batch::LaneSpec spec;
    spec.config = sim::capybaraConfig();
    spec.vstart = Volts(spec.config.monitor.vhigh);
    spec.harvest = Watts(1.2e-3);
    spec.program = {
        batch::LaneOp::runProfile(&work, Seconds(50e-6)),
        batch::LaneOp::idleFor(Seconds(0.25)),
        batch::LaneOp::rechargeTo(Volts(spec.config.monitor.vhigh)),
    };
    const std::vector<batch::LaneResult> kernel =
        batch::runPopulation({spec}, exactOptions());
    ASSERT_EQ(kernel.size(), 1u);
    expectExactLane(kernel[0], batch::runLaneScalar(spec), "single lane");
    EXPECT_GT(kernel[0].ops.size(), 0u);
}

/**
 * One heavy pulse drives the buffer from above Vhigh to below Voff:
 * the output-disable (Voff) crossing and the hysteresis re-arm level
 * both sit inside a single profile segment, so the kernel must split
 * the segment at the exact crossing rather than stepping over it.
 * The recharge that follows re-crosses Von and runs to Vhigh.
 */
TEST(BatchDivergence, VoffAndVhighInsideOneStep)
{
    const load::CurrentProfile crash = pulse(Amps(80e-3), Seconds(60e-3));
    batch::LaneSpec spec;
    spec.config = sim::capybaraConfig();
    spec.vstart = Volts(spec.config.monitor.vhigh.value() + 0.05);
    spec.harvest = Watts(3e-3);
    spec.program = {
        batch::LaneOp::runProfile(&crash, Seconds(50e-6)),
        batch::LaneOp::waitEnabled(
            Seconds(std::numeric_limits<double>::infinity())),
        batch::LaneOp::rechargeTo(Volts(spec.config.monitor.vhigh)),
    };
    const std::vector<batch::LaneResult> kernel =
        batch::runPopulation({spec}, exactOptions());
    const batch::LaneResult scalar = batch::runLaneScalar(spec);
    expectExactLane(kernel[0], scalar, "crash lane");
    EXPECT_TRUE(kernel[0].ops[0].power_failed);
    EXPECT_TRUE(kernel[0].ops[1].reached());
    EXPECT_TRUE(kernel[0].ops[2].reached());
}

/**
 * A wait target above the harvest asymptote is detected as Unreachable
 * with a diagnostic byte-identical to sim::Device's — same detection
 * point, same rendered voltages.
 */
TEST(BatchDivergence, UnreachableTargetMatchesDeviceDiagnostics)
{
    batch::LaneSpec spec;
    spec.config = sim::capybaraConfig();
    // No harvest: an idle lane only droops, so any target above the
    // start voltage sits above the asymptote and must be detected.
    spec.vstart = Volts(spec.config.monitor.voff.value() + 0.3);
    spec.harvest = Watts(0.0);
    spec.program = {
        batch::LaneOp::waitLevel(Volts(spec.config.monitor.vhigh),
                                 Seconds(30.0)),
        // Even a target barely above the (droop-decayed) voltage.
        batch::LaneOp::waitLevel(Volts(spec.vstart.value() + 0.05),
                                 Seconds(30.0)),
    };
    const std::vector<batch::LaneResult> kernel =
        batch::runPopulation({spec}, exactOptions());
    const batch::LaneResult scalar = batch::runLaneScalar(spec);
    expectExactLane(kernel[0], scalar, "unreachable lane");
    ASSERT_EQ(kernel[0].ops.size(), 2u);
    EXPECT_EQ(kernel[0].ops[0].wait_status, sim::WaitStatus::Unreachable);
    EXPECT_FALSE(kernel[0].ops[0].diagnostic.empty());
    EXPECT_EQ(kernel[0].ops[0].diagnostic, scalar.ops[0].diagnostic);
}

/**
 * Forcing the event-storm threshold to its floor peels lanes onto the
 * scalar engine almost immediately; results must not change, and the
 * peel counter must show the fallback actually engaged.
 */
TEST(BatchDivergence, EventStormPeelPreservesResults)
{
    const load::CurrentProfile work = pulse(Amps(25e-3), Seconds(15e-3));
    batch::LaneSpec spec;
    spec.config = sim::capybaraConfig();
    spec.vstart = Volts(spec.config.monitor.voff.value() + 0.03);
    spec.harvest = Watts(1e-3);
    spec.program = {
        // stop_on_failure = false keeps the segment alive through the
        // Voff crossing, so the crossing's reference steps accumulate
        // against the (floored) storm threshold instead of ending it.
        batch::LaneOp::runProfile(&work, Seconds(50e-6),
                                  /*stop_on_failure=*/false),
        batch::LaneOp::waitLevel(Volts(spec.config.monitor.vhigh),
                                 Seconds(10.0)),
    };
    batch::BatchOptions stormy = exactOptions();
    stormy.event_storm_threshold = 1;
    const std::vector<batch::LaneResult> peeled =
        batch::runPopulation({spec}, stormy);
    const std::vector<batch::LaneResult> normal =
        batch::runPopulation({spec}, exactOptions());
    expectExactLane(peeled[0], batch::runLaneScalar(spec), "peeled lane");
    expectExactLane(peeled[0], normal[0], "peeled vs normal");
    EXPECT_GT(peeled[0].peels, 0u);
}

/**
 * resetLane()/setLaneProgram() reuse (the ground-truth bisection's
 * access pattern): a rewound lane must reproduce a fresh engine's
 * results, and per-run power-failure counts must be deltas.
 */
TEST(BatchDivergence, LaneReuseMatchesFreshEngine)
{
    const load::CurrentProfile heavy = pulse(Amps(50e-3), Seconds(30e-3));
    batch::LaneSpec spec;
    spec.config = sim::capybaraConfig();
    spec.vstart = Volts(spec.config.monitor.vhigh);
    spec.program = {batch::LaneOp::runProfile(&heavy, Seconds(50e-6))};

    batch::BatchEngine engine(exactOptions());
    engine.addLane(spec);
    engine.run();
    const unsigned first_failures = engine.result(0).power_failures;
    const double first_vend = engine.result(0).vend.value();

    // Rerun the identical scenario on the same lane.
    engine.resetLane(0, spec.vstart, true);
    engine.run();
    EXPECT_EQ(engine.result(0).power_failures, first_failures)
        << "power failures must report per-run deltas";
    EXPECT_EQ(engine.result(0).vend.value(), first_vend);

    // Rerun from a different start; must match a fresh engine.
    const Volts lower(spec.config.monitor.voff.value() + 0.04);
    engine.resetLane(0, lower, true);
    engine.run();
    batch::LaneSpec fresh = spec;
    fresh.vstart = lower;
    const std::vector<batch::LaneResult> reference =
        batch::runPopulation({fresh}, exactOptions());
    expectExactLane(engine.result(0), reference[0], "reused lane");
}

} // namespace
