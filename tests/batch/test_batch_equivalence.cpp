/**
 * @file
 * Differential equivalence fuzz suite for the SoA batch engine
 * (DESIGN.md §14): seeded random lane populations run through both
 * executors — the lockstep kernel (runPopulation) and the sim::Device
 * reference (runLaneScalar) — and every per-op outcome is compared.
 *
 * Two kernel settings are exercised per population:
 *  - exact_replay = true must reproduce the scalar engine bit-for-bit
 *    (verdicts, diagnostics, voltages and times to 1e-9);
 *  - the default warm mode must agree within the analytic-equivalence
 *    tolerances (5 mV / sub-ms), with verdict flips permitted only
 *    when the scalar trajectory itself passes within tolerance of the
 *    deciding threshold (a razor-edge case by construction).
 *
 * Every population derives from one 64-bit seed; failures print the
 * seed so `CULPEO_FUZZ_SEED=<seed> CULPEO_FUZZ_ITERS=1 ./test_batch`
 * replays exactly one failing population. CULPEO_FUZZ_ITERS scales
 * the budget (default keeps tier-1 runtime bounded; the sanitizer CI
 * jobs run 500).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "batch/engine.hpp"
#include "sim/power_system.hpp"
#include "util/random.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    const unsigned long parsed = std::strtoul(value, nullptr, 10);
    return parsed == 0 ? fallback : unsigned(parsed);
}

std::uint64_t
baseSeed()
{
    const char *value = std::getenv("CULPEO_FUZZ_SEED");
    if (value == nullptr || *value == '\0')
        return 20220101; // Fixed default: tier-1 is deterministic.
    return std::strtoull(value, nullptr, 10);
}

bool
seedOverridden()
{
    const char *value = std::getenv("CULPEO_FUZZ_SEED");
    return value != nullptr && *value != '\0';
}

std::string
seedHint(std::uint64_t seed)
{
    return "replay with CULPEO_FUZZ_SEED=" + std::to_string(seed) +
           " CULPEO_FUZZ_ITERS=1";
}

/** Warm-mode agreement bounds (tests/integration kVoltTol and kin). */
constexpr double kWarmVoltTol = 5e-3;
constexpr double kWarmTimeTolAbs = 1e-3;
constexpr double kWarmTimeTolRel = 0.02;
/** Exact-replay bounds: bit-identical arithmetic, allow fp noise 0. */
constexpr double kExactTol = 1e-9;

/** One generated population: specs plus the storage they borrow. */
struct Population
{
    std::vector<batch::LaneSpec> specs;
    std::vector<std::unique_ptr<load::CurrentProfile>> profiles;
};

load::CurrentProfile *
randomProfile(Population &pop, util::Rng &rng)
{
    std::vector<load::Segment> segments;
    const int count = 1 + int(rng.uniformInt(3));
    for (int s = 0; s < count; ++s)
        segments.push_back({Seconds(rng.uniform(0.5e-3, 20e-3)),
                            Amps(rng.uniform(1e-3, 40e-3))});
    pop.profiles.push_back(std::make_unique<load::CurrentProfile>(
        "fuzz", std::move(segments)));
    return pop.profiles.back().get();
}

batch::LaneOp
randomOp(Population &pop, util::Rng &rng,
         const sim::PowerSystemConfig &config)
{
    const Volts voff = config.monitor.voff;
    const Volts vhigh = config.monitor.vhigh;
    switch (rng.uniformInt(5)) {
    case 0: { // Bounded idle-until-voltage (may time out or brown out).
        const Volts level(rng.uniform(voff.value() + 0.02, vhigh.value()));
        const Seconds deadline(rng.uniform(0.05, 2.0));
        return batch::LaneOp::waitLevel(level, deadline);
    }
    case 1: { // Unbounded recharge (may be Unreachable with no power).
        const Volts level(rng.uniform(voff.value() + 0.05, vhigh.value()));
        return batch::LaneOp::rechargeTo(level);
    }
    case 2: { // Wait for the monitor with a deadline.
        return batch::LaneOp::waitEnabled(Seconds(rng.uniform(0.05, 1.0)));
    }
    case 3: { // Fixed idle on the tick grid.
        return batch::LaneOp::idleFor(Seconds(rng.uniform(1e-3, 0.3)));
    }
    default: { // Load profile at a representative Euler quantum.
        load::CurrentProfile *profile = randomProfile(pop, rng);
        return batch::LaneOp::runProfile(profile,
                                         Seconds(rng.uniform(20e-6, 100e-6)));
    }
    }
}

Population
makePopulation(std::uint64_t seed)
{
    util::Rng rng(seed);
    Population pop;
    const std::size_t lanes = 2 + rng.uniformInt(6);
    for (std::size_t l = 0; l < lanes; ++l) {
        batch::LaneSpec spec;
        spec.config = sim::capybaraConfig();
        const Volts voff = spec.config.monitor.voff;
        const Volts vhigh = spec.config.monitor.vhigh;
        spec.vstart = Volts(rng.uniform(voff.value() + 0.05, vhigh.value()));
        spec.start_enabled = rng.uniform() < 0.85;
        spec.harvest =
            rng.uniform() < 0.3 ? Watts(0.0) : Watts(rng.uniform(0.3e-3, 5e-3));
        const std::size_t ops = 2 + rng.uniformInt(4);
        for (std::size_t o = 0; o < ops; ++o)
            spec.program.push_back(randomOp(pop, rng, spec.config));
        spec.repeat = rng.uniform() < 0.2 ? 2 : 1;
        pop.specs.push_back(std::move(spec));
    }
    return pop;
}

/**
 * Was the scalar outcome decided within @p tol of a verdict threshold?
 * Warm mode may legitimately flip such verdicts; anything else must
 * match exactly.
 */
bool
razorEdge(const batch::OpOutcome &scalar, const batch::LaneOp &op,
          const sim::PowerSystemConfig &config, double tol)
{
    const double voff = config.monitor.voff.value();
    const double von = config.monitor.vhigh.value(); // re-enable level
    switch (op.kind) {
    case batch::OpKind::WaitLevel:
        return std::abs(scalar.voltage.value() - op.level.value()) < tol ||
               std::abs(scalar.voltage.value() - voff) < tol;
    case batch::OpKind::WaitEnabled:
        return std::abs(scalar.voltage.value() - von) < tol;
    case batch::OpKind::RunProfile:
        return std::abs(scalar.vmin.value() - voff) < tol ||
               scalar.vmin.value() < voff + tol;
    case batch::OpKind::IdleFor:
        return false;
    }
    return false;
}

/** Compare kernel vs scalar, exact-replay flavor. Returns failure. */
bool
expectExact(const batch::LaneResult &kernel, const batch::LaneResult &scalar,
            std::size_t lane, const std::string &hint)
{
    bool failed = false;
    EXPECT_EQ(kernel.ops.size(), scalar.ops.size())
        << "lane " << lane << ": " << hint;
    if (kernel.ops.size() != scalar.ops.size())
        return true;
    for (std::size_t o = 0; o < kernel.ops.size(); ++o) {
        const batch::OpOutcome &k = kernel.ops[o];
        const batch::OpOutcome &s = scalar.ops[o];
        const std::string where =
            "lane " + std::to_string(lane) + " op " + std::to_string(o) +
            ": " + hint;
        EXPECT_EQ(int(k.kind), int(s.kind)) << where;
        EXPECT_EQ(int(k.wait_status), int(s.wait_status)) << where;
        EXPECT_EQ(k.completed, s.completed) << where;
        EXPECT_EQ(k.power_failed, s.power_failed) << where;
        EXPECT_EQ(k.collapsed, s.collapsed) << where;
        EXPECT_EQ(k.diagnostic, s.diagnostic) << where;
        EXPECT_NEAR(k.voltage.value(), s.voltage.value(), kExactTol) << where;
        EXPECT_NEAR(k.vmin.value(), s.vmin.value(), kExactTol) << where;
        EXPECT_NEAR(k.elapsed.value(), s.elapsed.value(),
                    kExactTol * std::max(1.0, s.elapsed.value()))
            << where;
        failed = failed || int(k.wait_status) != int(s.wait_status) ||
                 k.completed != s.completed ||
                 std::abs(k.voltage.value() - s.voltage.value()) > kExactTol;
    }
    EXPECT_EQ(kernel.power_failures, scalar.power_failures) << hint;
    EXPECT_NEAR(kernel.vend.value(), scalar.vend.value(), kExactTol) << hint;
    EXPECT_NEAR(kernel.end_time.value(), scalar.end_time.value(),
                kExactTol * std::max(1.0, scalar.end_time.value()))
        << hint;
    return failed;
}

/** Compare kernel vs scalar, warm flavor (threshold-guarded). */
void
expectWarm(const batch::LaneResult &kernel, const batch::LaneResult &scalar,
           const batch::LaneSpec &spec, std::size_t lane,
           const std::string &hint)
{
    ASSERT_EQ(kernel.ops.size(), scalar.ops.size())
        << "lane " << lane << ": " << hint;
    bool razor = false;
    for (std::size_t o = 0; o < kernel.ops.size(); ++o) {
        const batch::OpOutcome &k = kernel.ops[o];
        const batch::OpOutcome &s = scalar.ops[o];
        const batch::LaneOp &op =
            spec.program[o % spec.program.size()];
        const std::string where =
            "lane " + std::to_string(lane) + " op " + std::to_string(o) +
            ": " + hint;
        const bool verdicts_match =
            int(k.wait_status) == int(s.wait_status) &&
            k.completed == s.completed && k.power_failed == s.power_failed &&
            k.collapsed == s.collapsed;
        if (!verdicts_match) {
            EXPECT_TRUE(razorEdge(s, op, spec.config, kWarmVoltTol))
                << where << " — verdicts diverged away from any threshold";
            // A flip forks the downstream trajectory; later ops are not
            // comparable for this lane.
            razor = true;
            break;
        }
        // Unreachable diagnostics embed model-variant numerics; require
        // agreement on presence only in warm mode.
        EXPECT_EQ(k.diagnostic.empty(), s.diagnostic.empty()) << where;
        EXPECT_NEAR(k.voltage.value(), s.voltage.value(), kWarmVoltTol)
            << where;
        if (op.kind == batch::OpKind::RunProfile) {
            EXPECT_NEAR(k.vmin.value(), s.vmin.value(), kWarmVoltTol) << where;
        }
        EXPECT_NEAR(k.elapsed.value(), s.elapsed.value(),
                    std::max(kWarmTimeTolAbs,
                             kWarmTimeTolRel * s.elapsed.value()))
            << where;
    }
    // A razor-edge flip legitimately changes downstream trajectories;
    // aggregate checks only apply to populations with no flips.
    if (!razor) {
        EXPECT_EQ(kernel.power_failures, scalar.power_failures)
            << "lane " << lane << ": " << hint;
        EXPECT_NEAR(kernel.vend.value(), scalar.vend.value(), kWarmVoltTol)
            << "lane " << lane << ": " << hint;
    }
}

TEST(BatchEquivalenceFuzz, ExactReplayMatchesScalarBitForBit)
{
    const unsigned iters =
        seedOverridden() ? envUnsigned("CULPEO_FUZZ_ITERS", 1)
                         : envUnsigned("CULPEO_FUZZ_ITERS", 200);
    batch::BatchOptions exact;
    exact.exact_replay = true;
    for (unsigned i = 0; i < iters; ++i) {
        const std::uint64_t seed = baseSeed() + i;
        Population pop = makePopulation(seed);
        const std::vector<batch::LaneResult> kernel =
            batch::runPopulation(pop.specs, exact);
        for (std::size_t l = 0; l < pop.specs.size(); ++l) {
            const batch::LaneResult scalar =
                batch::runLaneScalar(pop.specs[l]);
            if (expectExact(kernel[l], scalar, l, seedHint(seed)))
                return; // First divergent population is enough signal.
        }
    }
}

TEST(BatchEquivalenceFuzz, WarmModeAgreesWithinAnalyticTolerances)
{
    const unsigned iters =
        seedOverridden() ? envUnsigned("CULPEO_FUZZ_ITERS", 1)
                         : envUnsigned("CULPEO_FUZZ_ITERS", 200);
    for (unsigned i = 0; i < iters; ++i) {
        const std::uint64_t seed = baseSeed() + i;
        Population pop = makePopulation(seed);
        const std::vector<batch::LaneResult> kernel =
            batch::runPopulation(pop.specs);
        for (std::size_t l = 0; l < pop.specs.size(); ++l) {
            const batch::LaneResult scalar =
                batch::runLaneScalar(pop.specs[l]);
            expectWarm(kernel[l], scalar, pop.specs[l], l, seedHint(seed));
            if (::testing::Test::HasFailure())
                return;
        }
    }
}

TEST(BatchEquivalenceFuzz, RepeatedRunsAreDeterministic)
{
    const std::uint64_t seed = baseSeed();
    Population pop = makePopulation(seed);
    const std::vector<batch::LaneResult> a = batch::runPopulation(pop.specs);
    const std::vector<batch::LaneResult> b = batch::runPopulation(pop.specs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t l = 0; l < a.size(); ++l) {
        ASSERT_EQ(a[l].ops.size(), b[l].ops.size()) << seedHint(seed);
        EXPECT_EQ(a[l].power_failures, b[l].power_failures);
        EXPECT_EQ(a[l].end_time.value(), b[l].end_time.value());
        EXPECT_EQ(a[l].vend.value(), b[l].vend.value());
        for (std::size_t o = 0; o < a[l].ops.size(); ++o) {
            EXPECT_EQ(a[l].ops[o].voltage.value(), b[l].ops[o].voltage.value());
            EXPECT_EQ(a[l].ops[o].elapsed.value(), b[l].ops[o].elapsed.value());
        }
    }
}

} // namespace
