/**
 * @file
 * BatchTrialRunner contract tests: sweep aggregates must match the
 * scalar sched::runTrialsWith() exactly in exact-replay mode, be
 * invariant to shard size, and — because per-trial telemetry scratch
 * sinks are merged into the user's sink in trial order, never in shard
 * completion order — serialize to byte-identical JSONL across repeated
 * runs and shard layouts.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "batch/trial_runner.hpp"
#include "sched/policy.hpp"
#include "sched/trial.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;

sched::TrialConfig
sweepConfig(unsigned trials)
{
    sched::TrialConfig config;
    config.duration = Seconds(10.0);
    config.seed = 7;
    config.trials = trials;
    return config;
}

void
expectAggregatesEqual(const sched::AggregateResult &a,
                      const sched::AggregateResult &b,
                      const std::string &what)
{
    ASSERT_EQ(a.capture_rates.size(), b.capture_rates.size()) << what;
    for (std::size_t i = 0; i < a.capture_rates.size(); ++i) {
        EXPECT_EQ(a.capture_rates[i], b.capture_rates[i])
            << what << " rate " << a.event_names[i];
        EXPECT_EQ(a.arrivals[i], b.arrivals[i])
            << what << " arrivals " << a.event_names[i];
    }
    EXPECT_EQ(a.power_failures_per_trial, b.power_failures_per_trial) << what;
    EXPECT_EQ(a.tasks_started, b.tasks_started) << what;
    EXPECT_EQ(a.tasks_completed, b.tasks_completed) << what;
    EXPECT_EQ(a.capture_latency_s, b.capture_latency_s) << what;
}

TEST(BatchSweep, ExactReplayMatchesScalarSweepAggregates)
{
    const sched::AppSpec app = apps::periodicSensing();
    sched::CulpeoPolicy policy;
    policy.initialize(app);
    const sched::TrialConfig config = sweepConfig(8);

    const sched::AggregateResult scalar =
        sched::runTrialsWith(app, policy, config);
    batch::TrialRunnerOptions options;
    options.batch.exact_replay = true;
    const sched::AggregateResult batched =
        batch::runTrialsBatch(app, policy, config, options);
    expectAggregatesEqual(scalar, batched, "scalar vs batch");
}

TEST(BatchSweep, TrialBuilderRoutesEligibleSweepsOntoBatchEngine)
{
    const sched::AppSpec app = apps::periodicSensing();
    sched::CulpeoPolicy policy;
    policy.initialize(app);
    const sched::TrialConfig config = sweepConfig(6);
    ASSERT_TRUE(batch::BatchTrialRunner::eligible(config));

    const sched::AggregateResult routed = TrialBuilder()
                                              .app(app)
                                              .policy(policy)
                                              .config(config)
                                              .runAll();
    expectAggregatesEqual(sched::runTrialsWith(app, policy, config), routed,
                          "TrialBuilder routing");
}

TEST(BatchSweep, AggregatesAreShardSizeInvariant)
{
    const sched::AppSpec app = apps::periodicSensing();
    sched::CulpeoPolicy policy;
    policy.initialize(app);
    const sched::TrialConfig config = sweepConfig(11);

    sched::AggregateResult reference;
    bool have_reference = false;
    for (const std::size_t shard : {std::size_t(1), std::size_t(4),
                                    std::size_t(32)}) {
        batch::TrialRunnerOptions options;
        options.shard_lanes = shard;
        const sched::AggregateResult result =
            batch::runTrialsBatch(app, policy, config, options);
        if (have_reference)
            expectAggregatesEqual(reference, result,
                                  "shard_lanes=" + std::to_string(shard));
        reference = result;
        have_reference = true;
    }
}

TEST(BatchSweep, TelemetryMergeOrderIsDeterministic)
{
    if (!telemetry::kEnabled)
        GTEST_SKIP() << "built with CULPEO_TELEMETRY=OFF";

    const sched::AppSpec app = apps::periodicSensing();
    sched::CulpeoPolicy policy;
    policy.initialize(app);

    // Two identical seeded sweeps — and a third with a different shard
    // layout — must serialize byte-identically: scratches merge in
    // trial order regardless of which shard finishes first.
    std::string snapshots[3];
    const std::size_t shards[3] = {3, 3, 32};
    for (int run = 0; run < 3; ++run) {
        telemetry::Telemetry sink;
        sched::TrialConfig config = sweepConfig(9);
        config.telemetry = &sink;
        batch::TrialRunnerOptions options;
        options.shard_lanes = shards[run];
        options.batch.exact_replay = true;
        batch::runTrialsBatch(app, policy, config, options);
        std::ostringstream out;
        sink.writeJsonl(out);
        snapshots[run] = out.str();
    }
    ASSERT_FALSE(snapshots[0].empty());
    EXPECT_EQ(snapshots[0], snapshots[1])
        << "identical sweeps must serialize identically";
    EXPECT_EQ(snapshots[0], snapshots[2])
        << "merge order is trial order, not shard completion order";
}

TEST(BatchSweep, TelemetryMatchesScalarSweepSnapshot)
{
    if (!telemetry::kEnabled)
        GTEST_SKIP() << "built with CULPEO_TELEMETRY=OFF";

    const sched::AppSpec app = apps::periodicSensing();
    sched::CulpeoPolicy policy;
    policy.initialize(app);

    std::string scalar_jsonl;
    {
        telemetry::Telemetry sink;
        sched::TrialConfig config = sweepConfig(5);
        config.telemetry = &sink;
        sched::runTrialsWith(app, policy, config);
        std::ostringstream out;
        sink.writeJsonl(out);
        scalar_jsonl = out.str();
    }
    std::string batch_jsonl;
    {
        telemetry::Telemetry sink;
        sched::TrialConfig config = sweepConfig(5);
        config.telemetry = &sink;
        batch::TrialRunnerOptions options;
        options.batch.exact_replay = true;
        batch::runTrialsBatch(app, policy, config, options);
        std::ostringstream out;
        sink.writeJsonl(out);
        batch_jsonl = out.str();
    }
    ASSERT_FALSE(scalar_jsonl.empty());
    EXPECT_EQ(scalar_jsonl, batch_jsonl)
        << "exact-replay batch sweeps must emit the scalar trace stream";
}

} // namespace
