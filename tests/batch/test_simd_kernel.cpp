/**
 * @file
 * SIMD-vs-scalar equivalence for the batch commit kernels (DESIGN.md
 * §15): seeded CommitPanels run through every compiled dispatch tier
 * and must agree with the scalar tier within a tight ulp bound (warm)
 * or bit-for-bit (exact_replay, which never leaves the base-ISA TU).
 * Also pins the fastExp polynomial's accuracy and clamp semantics, the
 * batched crossing solver against analytic roots and the exact
 * bisection, and the runtime dispatch clamps.
 *
 * Tiers are forced through the explicit simd::Tier kernel arguments;
 * tiers the host CPU lacks are skipped. The CULPEO_SIMD_WIDTH env knob
 * clamps the process-wide activeTier() the same way — CI's
 * forced-scalar leg sets it for the whole suite (it is cached on first
 * read, so flipping it mid-process is deliberately not tested here).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "batch/commit_kernel.hpp"
#include "sim/segment_curve.hpp"

namespace {

using namespace culpeo;
using batch::CommitPanel;
using batch::CrossingPanel;
using batch::simd::Tier;

/** Distance in representable doubles (same-sign finite values). */
std::int64_t
ulpDiff(double a, double b)
{
    const auto ia = std::bit_cast<std::int64_t>(a);
    const auto ib = std::bit_cast<std::int64_t>(b);
    return std::abs(ia - ib);
}

bool
tierAvailable(Tier tier)
{
    return batch::simd::width(tier) <=
           batch::simd::width(batch::simd::detectedTier());
}

/**
 * Seeded panel with sweep-realistic magnitudes: volts-scale q0, sub-volt
 * branch deltas, millifarad capacitances, tau from sub-millisecond to
 * seconds, and a mix of hinted and kernel-computed exponentials.
 */
CommitPanel
seededPanel(std::size_t n, std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    CommitPanel p;
    for (std::size_t k = 0; k < n; ++k) {
        const double q0 = 2.0 + 3.0 * unit(rng);
        const double d0 = -0.4 + 0.8 * unit(rng);
        const double ct = 1e-3 * (1.0 + 9.0 * unit(rng));
        const double frac = 0.1 + 0.8 * unit(rng);
        const double tau = std::pow(10.0, -4.0 + 5.0 * unit(rng));
        const double beta = 10.0 * (1.0 + unit(rng));
        const double net = -0.05 + 0.1 * unit(rng);
        const double dt = std::pow(10.0, -6.0 + 6.0 * unit(rng));
        const bool hinted = unit(rng) < 0.5;
        const double hint = hinted ? std::exp(-dt / tau) : -1.0;
        p.push(std::uint32_t(k), q0, d0, ct, frac, 1.0 - frac, tau,
               beta, net, dt, hint, q0, -net / ct, d0);
    }
    return p;
}

TEST(FastExp, MatchesStdExpWithinOneUlp)
{
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<double> arg(-700.0, 700.0);
    std::int64_t worst = 0;
    for (int i = 0; i < 200000; ++i) {
        const double x = arg(rng);
        worst = std::max(worst, ulpDiff(batch::fastExp(x), std::exp(x)));
    }
    // Measured max over this range is 1 ulp; 2 leaves slack for libm
    // differences across platforms without hiding a real regression.
    EXPECT_LE(worst, 2);
}

TEST(FastExp, EdgeSemantics)
{
    EXPECT_EQ(batch::fastExp(0.0), 1.0);
    // Saturating clamps instead of inf/0 — documented branchless
    // semantics (the kernels feed it -dt/tau which can overflow when
    // tau is denormal-small).
    EXPECT_EQ(batch::fastExp(1e300), batch::fastExp(709.0));
    EXPECT_EQ(batch::fastExp(-1e300), batch::fastExp(-745.0));
    EXPECT_TRUE(std::isfinite(batch::fastExp(709.0)));
    EXPECT_GT(batch::fastExp(-745.0), 0.0);
    // exp(-745) is a denormal; the two-step scale must reach it.
    EXPECT_LT(batch::fastExp(-745.0),
              std::numeric_limits<double>::min());
    EXPECT_TRUE(std::isnan(
        batch::fastExp(std::numeric_limits<double>::quiet_NaN())));
}

TEST(FastExp, Expm1AvoidsCancellation)
{
    std::mt19937_64 rng(11);
    std::uniform_real_distribution<double> arg(-0.49, 0.49);
    for (int i = 0; i < 50000; ++i) {
        const double x = arg(rng);
        EXPECT_LE(ulpDiff(batch::fastExpm1(x), std::expm1(x)), 16)
            << "x = " << x;
    }
    EXPECT_EQ(batch::fastExpm1(0.0), 0.0);
    EXPECT_LE(ulpDiff(batch::fastExpm1(2.0), std::expm1(2.0)), 4);
}

TEST(FastExpArray, TiersAgreeWithScalarTier)
{
    std::vector<double> x(1003);
    std::mt19937_64 rng(13);
    std::uniform_real_distribution<double> arg(-700.0, 700.0);
    for (double &v : x)
        v = arg(rng);
    std::vector<double> base(x.size());
    batch::fastExpArray(x.data(), base.data(), x.size(), Tier::Scalar);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_LE(ulpDiff(base[i], std::exp(x[i])), 2);
    for (const Tier tier : {Tier::Wide4, Tier::Wide8}) {
        if (!tierAvailable(tier))
            GTEST_SKIP() << "host lacks "
                         << batch::simd::tierName(tier);
        std::vector<double> out(x.size());
        batch::fastExpArray(x.data(), out.data(), x.size(), tier);
        for (std::size_t i = 0; i < x.size(); ++i) {
            // Wide tiers contract the Horner chain with FMA; one ulp
            // of drift against the scalar tier is the expected cap.
            EXPECT_LE(ulpDiff(out[i], base[i]), 1)
                << batch::simd::tierName(tier) << " lane " << i;
        }
    }
}

TEST(CommitKernel, WarmTiersAgreeWithScalarTierUlp)
{
    // Widths 1, 4, 8 plus ragged tails exercise every block/tail split.
    for (const std::size_t n : {std::size_t(1), std::size_t(4),
                                std::size_t(8), std::size_t(37)}) {
        CommitPanel base = seededPanel(n, 17 + n);
        batch::commitPanelWarm(base, Tier::Scalar);
        for (const Tier tier : {Tier::Wide4, Tier::Wide8}) {
            if (!tierAvailable(tier))
                continue;
            CommitPanel p = seededPanel(n, 17 + n);
            batch::commitPanelWarm(p, tier);
            for (std::size_t k = 0; k < n; ++k) {
                EXPECT_LE(ulpDiff(p.vb1[k], base.vb1[k]), 4)
                    << batch::simd::tierName(tier) << " vb1 " << k;
                EXPECT_LE(ulpDiff(p.vs1[k], base.vs1[k]), 4)
                    << batch::simd::tierName(tier) << " vs1 " << k;
                EXPECT_LE(ulpDiff(p.vend[k], base.vend[k]), 4)
                    << batch::simd::tierName(tier) << " vend " << k;
                EXPECT_EQ(p.deep[k], base.deep[k])
                    << batch::simd::tierName(tier) << " deep " << k;
            }
        }
    }
}

TEST(CommitKernel, ExactKernelIsBitIdenticalToReferenceExpressions)
{
    const std::size_t n = 23;
    CommitPanel p = seededPanel(n, 29);
    batch::commitPanelExact(p);
    CommitPanel q = seededPanel(n, 29);
    for (std::size_t k = 0; k < n; ++k) {
        // The reference expressions, in the kernel's exact order (the
        // scalar Capacitor::advanceAnalytic shape).
        const double net = q.net[k];
        const double dtk = q.dt[k];
        const double d_inf = -net * q.beta[k] * q.tau[k];
        const double qq = q.q0[k] - net * dtk / q.ct[k];
        const double e = q.exp_hint[k] >= 0.0
            ? q.exp_hint[k]
            : std::exp(-dtk / q.tau[k]);
        const double d = (q.d0[k] - d_inf) * e + d_inf;
        EXPECT_EQ(p.vb1[k], qq + q.cs_over_ct[k] * d) << "lane " << k;
        EXPECT_EQ(p.vs1[k], qq - q.cb_over_ct[k] * d) << "lane " << k;
        EXPECT_EQ(p.vend[k],
                  q.curve_a[k] + q.curve_b[k] * dtk + q.curve_c[k] * e)
            << "lane " << k;
    }
    // Re-running the exact kernel is deterministic bit-for-bit.
    batch::commitPanelExact(q);
    for (std::size_t k = 0; k < n; ++k) {
        EXPECT_EQ(p.vb1[k], q.vb1[k]);
        EXPECT_EQ(p.vs1[k], q.vs1[k]);
        EXPECT_EQ(p.vend[k], q.vend[k]);
    }
}

TEST(CommitKernel, EdgeLanesSurviveEveryTier)
{
    // Near-zero tau drives -dt/tau deep past the underflow clamp;
    // denormal d0 and zero net exercise the flush-prone corners. The
    // kernels must produce identical *finite* answers on every tier.
    CommitPanel base;
    const double denorm = std::numeric_limits<double>::denorm_min();
    base.push(0, 3.0, denorm, 1e-3, 0.5, 0.5, 1e-300, 10.0, 0.0, 1.0,
              -1.0, 3.0, 0.0, denorm);
    base.push(1, 3.0, 0.1, 1e-3, 0.5, 0.5, 1e6, 10.0, 1e-3, 1e-6, -1.0,
              3.0, -1.0, 0.1);
    base.push(2, 3.0, -0.2, 1e-3, 0.25, 0.75, 0.5, 10.0, -1e-3, 0.5,
              std::exp(-0.5 / 0.5), 3.0, 1.0, -0.2);
    CommitPanel scalar = base;
    batch::commitPanelWarm(scalar, Tier::Scalar);
    for (std::size_t k = 0; k < scalar.size(); ++k) {
        EXPECT_TRUE(std::isfinite(scalar.vb1[k])) << k;
        EXPECT_TRUE(std::isfinite(scalar.vend[k])) << k;
    }
    for (const Tier tier : {Tier::Wide4, Tier::Wide8}) {
        if (!tierAvailable(tier))
            continue;
        CommitPanel p = base;
        batch::commitPanelWarm(p, tier);
        for (std::size_t k = 0; k < p.size(); ++k) {
            // Absolute volts, not ulps: lane 1's (d0 - d_inf) * e + d_inf
            // cancels a 1e4-scale d_inf down to 0.1, so a single ulp of
            // FMA drift in e amplifies ~1e4x. 1e-9 V is still three
            // orders below the engine's warm divergence budget.
            EXPECT_NEAR(p.vb1[k], scalar.vb1[k], 1e-9) << k;
            EXPECT_NEAR(p.vs1[k], scalar.vs1[k], 1e-9) << k;
            EXPECT_NEAR(p.vend[k], scalar.vend[k], 1e-9) << k;
        }
    }
}

TEST(SolveCrossings, MatchesAnalyticRoots)
{
    CrossingPanel p;
    // Falling: v(t) = 1 + e^{-t} crosses 1.5 at exactly ln 2.
    const auto q0 =
        p.push(1.0, 0.0, 1.0, 1.0, 1.5, 5.0, /*falling=*/true);
    // Rising: v(t) = 1 + 0.5 t - e^{-t} crosses 1.0 where
    // 0.5 t = e^{-t}.
    const auto q1 =
        p.push(1.0, 0.5, -1.0, 1.0, 1.0, 5.0, /*falling=*/false);
    // Never brackets: the level sits above the curve's maximum.
    const auto q2 =
        p.push(1.0, 0.0, 1.0, 1.0, 3.0, 5.0, /*falling=*/true);
    batch::solveCrossings(p, Tier::Scalar);

    EXPECT_NEAR(p.out[q0], std::log(2.0), 1e-9);
    const sim::SegmentCurve rising{1.0, 0.5, -1.0, 1.0};
    const double exact =
        rising.firstCrossing(1.0, 5.0, /*falling=*/false);
    ASSERT_GT(exact, 0.0);
    EXPECT_NEAR(p.out[q1], exact, 1e-9);
    EXPECT_EQ(p.out[q2], -1.0);
}

TEST(SolveCrossings, TiersAgreeOnSeededQueryPanels)
{
    std::mt19937_64 rng(43);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    CrossingPanel base;
    for (int i = 0; i < 64; ++i) {
        const double a = 1.0 + unit(rng);
        const double c = 0.2 + unit(rng);
        const double tau = 0.1 + 2.0 * unit(rng);
        const double level = a + c * (0.1 + 0.8 * unit(rng));
        base.push(a, -0.01 * unit(rng), c, tau, level, 8.0 * tau,
                  /*falling=*/true);
    }
    CrossingPanel scalar = base;
    batch::solveCrossings(scalar, Tier::Scalar);
    std::size_t found = 0;
    for (std::size_t k = 0; k < scalar.size(); ++k)
        found += scalar.out[k] > 0.0 ? 1 : 0;
    EXPECT_GT(found, 32u) << "seeded panel should mostly bracket";
    for (const Tier tier : {Tier::Wide4, Tier::Wide8}) {
        if (!tierAvailable(tier))
            continue;
        CrossingPanel p = base;
        batch::solveCrossings(p, tier);
        for (std::size_t k = 0; k < p.size(); ++k) {
            if (scalar.out[k] < 0.0) {
                EXPECT_EQ(p.out[k], scalar.out[k]) << k;
            } else {
                // The Newton trajectory may differ by an exp ulp per
                // sweep; the converged bracket end stays within the
                // solver's own 1e-12 relative width.
                EXPECT_NEAR(p.out[k], scalar.out[k],
                            1e-10 * (1.0 + scalar.out[k]))
                    << batch::simd::tierName(tier) << " query " << k;
            }
        }
    }
}

TEST(SimdDispatch, TiersAreCoherent)
{
    const Tier detected = batch::simd::detectedTier();
    const Tier active = batch::simd::activeTier();
    const int dw = batch::simd::width(detected);
    const int aw = batch::simd::width(active);
    EXPECT_TRUE(dw == 1 || dw == 4 || dw == 8);
    // activeTier honors CULPEO_SIMD_WIDTH only as a clamp, never as an
    // escalation past what CPUID reported.
    EXPECT_LE(aw, dw);
    EXPECT_STRNE(batch::simd::tierName(active), "");
}

} // namespace
