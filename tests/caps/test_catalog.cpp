/** @file Unit tests for the capacitor catalog and bank composer. */

#include <gtest/gtest.h>

#include "caps/catalog.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using caps::Bank;
using caps::CatalogOptions;
using caps::Part;
using caps::Technology;

TEST(Catalog, GeneratesAllTechnologies)
{
    const auto parts = caps::generateCatalog();
    unsigned counts[4] = {0, 0, 0, 0};
    for (const auto &part : parts)
        ++counts[unsigned(part.technology)];
    for (unsigned c : counts)
        EXPECT_EQ(c, 60u);
}

TEST(Catalog, DeterministicForSameSeed)
{
    const auto a = caps::generateCatalog();
    const auto b = caps::generateCatalog();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].part_number, b[i].part_number);
        EXPECT_DOUBLE_EQ(a[i].volume_mm3, b[i].volume_mm3);
    }
}

TEST(Catalog, PartsHavePositiveProperties)
{
    for (const auto &part : caps::generateCatalog()) {
        EXPECT_GT(part.capacitance.value(), 0.0);
        EXPECT_GT(part.esr.value(), 0.0);
        EXPECT_GT(part.volume_mm3, 0.0);
        EXPECT_GE(part.leakage.value(), 0.0);
    }
}

TEST(ComposeBank, ParallelMath)
{
    Part part;
    part.technology = Technology::Supercapacitor;
    part.capacitance = Farads(7.5e-3);
    part.esr = Ohms(24.0);
    part.volume_mm3 = 7.2;
    part.leakage = Amps(20e-9);

    const Bank bank = caps::composeBank(part, Farads(45e-3));
    EXPECT_EQ(bank.count, 6u);
    EXPECT_NEAR(bank.capacitance.value(), 45e-3, 1e-12);
    EXPECT_NEAR(bank.esr.value(), 4.0, 1e-12);
    EXPECT_NEAR(bank.volume_mm3, 43.2, 1e-9);
    EXPECT_NEAR(bank.leakage.value(), 120e-9, 1e-15);
}

TEST(ComposeBank, RoundsPartCountUp)
{
    Part part;
    part.capacitance = Farads(10e-3);
    part.esr = Ohms(1.0);
    part.volume_mm3 = 1.0;
    const Bank bank = caps::composeBank(part, Farads(45e-3));
    EXPECT_EQ(bank.count, 5u);
    EXPECT_GE(bank.capacitance.value(), 45e-3);
}

TEST(Banks, SupercapsAreSmallestAndLeastLeaky)
{
    const auto banks =
        caps::composeBanks(caps::generateCatalog(), Farads(45e-3));
    const Bank *super =
        caps::smallestOfTechnology(banks, Technology::Supercapacitor);
    ASSERT_NE(super, nullptr);
    for (Technology other : {Technology::Electrolytic, Technology::Ceramic,
                             Technology::Tantalum}) {
        const Bank *best = caps::smallestOfTechnology(banks, other);
        ASSERT_NE(best, nullptr);
        EXPECT_LT(super->volume_mm3, best->volume_mm3)
            << "supercap bank should be smaller than "
            << caps::technologyName(other);
    }
    // nA-class leakage and a practical part count (Fig. 3 callouts).
    EXPECT_LT(super->leakage.value(), 1e-6);
    EXPECT_LE(super->count, 60u);
}

TEST(Banks, CeramicsNeedThousandsOfParts)
{
    const auto banks =
        caps::composeBanks(caps::generateCatalog(), Farads(45e-3));
    const Bank *ceramic =
        caps::smallestOfTechnology(banks, Technology::Ceramic);
    ASSERT_NE(ceramic, nullptr);
    EXPECT_GT(ceramic->count, 900u);
    // But extremely low ESR.
    EXPECT_LT(ceramic->esr.value(), 1e-3);
}

TEST(Banks, TantalumLeakageIsMilliampClass)
{
    const auto banks =
        caps::composeBanks(caps::generateCatalog(), Farads(45e-3));
    const Bank *tantalum =
        caps::smallestOfTechnology(banks, Technology::Tantalum);
    ASSERT_NE(tantalum, nullptr);
    EXPECT_GT(tantalum->leakage.value(), 1e-3);
}

TEST(Banks, SupercapEsrIsOhmClass)
{
    const auto banks =
        caps::composeBanks(caps::generateCatalog(), Farads(45e-3));
    const Bank *super =
        caps::smallestOfTechnology(banks, Technology::Supercapacitor);
    ASSERT_NE(super, nullptr);
    EXPECT_GT(super->esr.value(), 0.5);
}

TEST(Pareto, FrontierIsMonotone)
{
    const auto banks =
        caps::composeBanks(caps::generateCatalog(), Farads(45e-3));
    const auto frontier = caps::paretoFrontier(banks);
    ASSERT_GT(frontier.size(), 1u);
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        EXPECT_GE(frontier[i].volume_mm3, frontier[i - 1].volume_mm3);
        EXPECT_LT(frontier[i].esr.value(), frontier[i - 1].esr.value());
    }
}

TEST(Pareto, FrontierMembersAreNotDominated)
{
    const auto banks =
        caps::composeBanks(caps::generateCatalog(), Farads(45e-3));
    const auto frontier = caps::paretoFrontier(banks);
    for (const auto &member : frontier) {
        for (const auto &other : banks) {
            const bool dominates =
                other.volume_mm3 < member.volume_mm3 &&
                other.esr.value() < member.esr.value();
            EXPECT_FALSE(dominates);
        }
    }
}

TEST(ReferenceBank, MatchesPaperCallout)
{
    const caps::Bank bank = caps::referenceBank();
    EXPECT_EQ(bank.part.part_number, "CPX3225A752D");
    EXPECT_EQ(bank.count, 6u);
    EXPECT_NEAR(bank.capacitance.value(), 45e-3, 1e-12);
    EXPECT_NEAR(bank.esr.value(), 4.0, 1e-9);
    EXPECT_NEAR(bank.leakage.value(), 120e-9, 1e-15);
    // Rice-grain scale: tens of cubic millimetres.
    EXPECT_LT(bank.volume_mm3, 60.0);
}

TEST(Catalog, Validation)
{
    CatalogOptions bad;
    bad.parts_per_technology = 0;
    EXPECT_THROW(caps::generateCatalog(bad), culpeo::log::FatalError);
    Part part;
    part.capacitance = Farads(0.0);
    EXPECT_THROW(caps::composeBank(part, Farads(1e-3)), culpeo::log::FatalError);
}

} // namespace
