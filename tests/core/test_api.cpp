/** @file Unit tests for the Culpeo public API facade (Table I). */

#include <gtest/gtest.h>

#include "core/api.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using core::Culpeo;
using core::PowerSystemModel;
using core::UArchProfiler;

Culpeo
makeCulpeo()
{
    return Culpeo(core::modelFromConfig(sim::capybaraConfig()),
                  std::make_unique<UArchProfiler>());
}

/** Run a synthetic profile cycle through the Table I calls. */
void
profileCycle(Culpeo &culpeo, core::TaskId id, double dip, double vfinal)
{
    culpeo.profileStart(Volts(2.5));
    for (int i = 0; i < 100; ++i)
        culpeo.tick(Seconds(1e-3), Volts(2.5 - dip * (i % 10 == 5)));
    culpeo.profileEnd(id, Volts(2.5 - dip));
    for (int i = 0; i < 100; ++i)
        culpeo.tick(Seconds(1e-3), Volts(vfinal));
    culpeo.reboundEnd(id, Volts(vfinal));
}

TEST(CulpeoApi, RequiresProfiler)
{
    EXPECT_THROW(Culpeo(PowerSystemModel{}, nullptr), culpeo::log::FatalError);
}

TEST(CulpeoApi, UnknownTaskDefaults)
{
    // Section V-B: get_vsafe returns Vhigh and get_vdrop returns -1 when
    // no valid values exist.
    Culpeo culpeo = makeCulpeo();
    EXPECT_DOUBLE_EQ(culpeo.getVsafe(99).value(),
                     culpeo.model().vhigh.value());
    EXPECT_DOUBLE_EQ(culpeo.getVdrop(99).value(), -1.0);
    EXPECT_FALSE(culpeo.hasResult(99));
}

TEST(CulpeoApi, ComputeVsafeOnUnprofiledTaskIsNoOp)
{
    Culpeo culpeo = makeCulpeo();
    culpeo.computeVsafe(5);
    EXPECT_FALSE(culpeo.hasResult(5));
}

TEST(CulpeoApi, FullProfileCycleYieldsResult)
{
    Culpeo culpeo = makeCulpeo();
    profileCycle(culpeo, 3, 0.4, 2.4);
    culpeo.computeVsafe(3);
    ASSERT_TRUE(culpeo.hasResult(3));
    const Volts vsafe = culpeo.getVsafe(3);
    EXPECT_GT(vsafe.value(), culpeo.model().voff.value());
    EXPECT_LE(vsafe.value(), culpeo.model().vhigh.value());
    EXPECT_GT(culpeo.getVdrop(3).value(), 0.0);
}

TEST(CulpeoApi, VsafeClampedToBufferRange)
{
    Culpeo culpeo = makeCulpeo();
    // An enormous drop extrapolates beyond Vhigh; the API clamps.
    profileCycle(culpeo, 4, 0.9, 2.45);
    culpeo.computeVsafe(4);
    EXPECT_LE(culpeo.getVsafe(4).value(), culpeo.model().vhigh.value());
}

TEST(CulpeoApi, ImportPgFlowsThroughAccessors)
{
    Culpeo culpeo = makeCulpeo();
    culpeo.importPg(7, Volts(2.2), Volts(0.3));
    EXPECT_TRUE(culpeo.hasResult(7));
    EXPECT_DOUBLE_EQ(culpeo.getVsafe(7).value(), 2.2);
    EXPECT_DOUBLE_EQ(culpeo.getVdrop(7).value(), 0.3);
}

TEST(CulpeoApi, BufferConfigTagsResults)
{
    Culpeo culpeo = makeCulpeo();
    culpeo.importPg(1, Volts(2.0), Volts(0.1));
    culpeo.setBufferConfig(2);
    // The buffer-2 view has no data for task 1.
    EXPECT_DOUBLE_EQ(culpeo.getVsafe(1).value(),
                     culpeo.model().vhigh.value());
    culpeo.importPg(1, Volts(2.3), Volts(0.2));
    EXPECT_DOUBLE_EQ(culpeo.getVsafe(1).value(), 2.3);
    culpeo.setBufferConfig(0);
    EXPECT_DOUBLE_EQ(culpeo.getVsafe(1).value(), 2.0);
}

TEST(CulpeoApi, InvalidateForcesReprofiling)
{
    Culpeo culpeo = makeCulpeo();
    culpeo.importPg(1, Volts(2.0), Volts(0.1));
    culpeo.invalidate();
    EXPECT_FALSE(culpeo.hasResult(1));
}

TEST(CulpeoApi, MultiWithUnknownTaskIsVhigh)
{
    Culpeo culpeo = makeCulpeo();
    culpeo.importPg(1, Volts(2.0), Volts(0.1));
    EXPECT_DOUBLE_EQ(culpeo.getVsafeMulti({1, 42}).value(),
                     culpeo.model().vhigh.value());
}

TEST(CulpeoApi, MultiComposesKnownTasks)
{
    Culpeo culpeo = makeCulpeo();
    culpeo.importPg(1, Volts(1.9), Volts(0.1));
    culpeo.importPg(2, Volts(2.0), Volts(0.15));
    const Volts multi = culpeo.getVsafeMulti({1, 2});
    // The sequence needs at least as much as the single most demanding
    // task, and no more than Vhigh.
    EXPECT_GE(multi.value(), 2.0);
    EXPECT_LE(multi.value(), culpeo.model().vhigh.value());
}

TEST(CulpeoApi, FeasibilityUsesVsafe)
{
    Culpeo culpeo = makeCulpeo();
    culpeo.importPg(1, Volts(2.0), Volts(0.1));
    EXPECT_TRUE(culpeo.feasible(1, Volts(2.1)));
    EXPECT_FALSE(culpeo.feasible(1, Volts(1.9)));
    // Unknown task: feasible only from a full buffer.
    EXPECT_FALSE(culpeo.feasible(9, Volts(2.5)));
    EXPECT_TRUE(culpeo.feasible(9, culpeo.model().vhigh));
}

TEST(CulpeoApi, InconsistentProfileIsDiscarded)
{
    culpeo::log::setVerbose(false);
    Culpeo culpeo = makeCulpeo();
    // Rebound "settles" above the start voltage is fine, but a minimum
    // above the start is impossible; simulate by never ticking and
    // ending at a voltage above start so vmin > vstart cannot happen —
    // instead check the valid() guard via a zero-voltage final.
    culpeo.profileStart(Volts(2.5));
    culpeo.profileEnd(8, Volts(2.4));
    culpeo.reboundEnd(8, Volts(0.0));
    culpeo.computeVsafe(8);
    culpeo::log::setVerbose(true);
    EXPECT_FALSE(culpeo.hasResult(8));
}

} // namespace
