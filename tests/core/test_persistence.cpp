/** @file Unit tests for FRAM-style profile-table persistence. */

#include <gtest/gtest.h>

#include <memory>

#include "core/api.hpp"
#include "core/persistence.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using culpeo::units::Volts;
using core::ProfileTable;
using core::RProfile;
using core::RResult;
using core::imageIsValid;
using core::loadTable;
using core::saveTable;

ProfileTable
populatedTable()
{
    ProfileTable table;
    RProfile profile;
    profile.vstart = Volts(2.50);
    profile.vmin = Volts(2.10);
    profile.vfinal = Volts(2.40);
    table.storeProfile(1, 0, profile);
    profile.vmin = Volts(2.30);
    table.storeProfile(2, 0, profile);
    table.storeProfile(1, 3, profile); // Second buffer configuration.

    RResult result;
    result.vsafe = Volts(2.05);
    result.vsafe_energy = Volts(1.72);
    result.vdelta_safe = Volts(0.33);
    result.vdelta_observed = Volts(0.21);
    table.storeResult(1, 0, result);
    return table;
}

TEST(Persistence, RoundTripPreservesEverything)
{
    const ProfileTable original = populatedTable();
    const ProfileTable restored = loadTable(saveTable(original));

    EXPECT_EQ(restored.profileCount(), original.profileCount());
    EXPECT_EQ(restored.resultCount(), original.resultCount());

    const auto profile = restored.profile(1, 0);
    ASSERT_TRUE(profile.has_value());
    EXPECT_DOUBLE_EQ(profile->vstart.value(), 2.50);
    EXPECT_DOUBLE_EQ(profile->vmin.value(), 2.10);
    EXPECT_DOUBLE_EQ(profile->vfinal.value(), 2.40);
    ASSERT_TRUE(restored.profile(1, 3).has_value());

    const auto result = restored.result(1, 0);
    ASSERT_TRUE(result.has_value());
    EXPECT_DOUBLE_EQ(result->vsafe.value(), 2.05);
    EXPECT_DOUBLE_EQ(result->vdelta_safe.value(), 0.33);
}

TEST(Persistence, EmptyTableRoundTrips)
{
    const ProfileTable restored = loadTable(saveTable(ProfileTable{}));
    EXPECT_EQ(restored.profileCount(), 0u);
    EXPECT_EQ(restored.resultCount(), 0u);
}

TEST(Persistence, TruncatedImageRejected)
{
    auto image = saveTable(populatedTable());
    image.resize(image.size() - 3);
    EXPECT_FALSE(imageIsValid(image));
    EXPECT_THROW(loadTable(image), log::FatalError);
}

TEST(Persistence, BitFlipRejected)
{
    auto image = saveTable(populatedTable());
    image[image.size() / 2] ^= 0x40; // A torn/corrupted FRAM write.
    EXPECT_FALSE(imageIsValid(image));
}

TEST(Persistence, WrongMagicRejected)
{
    auto image = saveTable(populatedTable());
    image[0] ^= 0xFF;
    EXPECT_FALSE(imageIsValid(image));
}

TEST(Persistence, TinyImageRejected)
{
    EXPECT_FALSE(imageIsValid({1, 2, 3}));
}

TEST(Persistence, ValidImageAccepted)
{
    EXPECT_TRUE(imageIsValid(saveTable(populatedTable())));
}

TEST(Persistence, CulpeoSnapshotSurvivesPowerFailure)
{
    // The end-to-end intermittent story: profile, checkpoint, "reboot"
    // into a fresh instance, restore, and keep the same Vsafe values.
    const auto model = core::modelFromConfig(sim::capybaraConfig());
    core::Culpeo before(model, std::make_unique<core::UArchProfiler>());
    before.importPg(7, Volts(2.10), Volts(0.25));
    before.setBufferConfig(2);
    before.importPg(7, Volts(2.30), Volts(0.30));

    const auto image = before.snapshot();

    core::Culpeo after(model, std::make_unique<core::UArchProfiler>());
    after.restore(image);
    EXPECT_DOUBLE_EQ(after.getVsafe(7).value(), 2.10);
    after.setBufferConfig(2);
    EXPECT_DOUBLE_EQ(after.getVsafe(7).value(), 2.30);
}

TEST(Persistence, RestoreReplacesExistingContents)
{
    const auto model = core::modelFromConfig(sim::capybaraConfig());
    core::Culpeo culpeo(model, std::make_unique<core::UArchProfiler>());
    culpeo.importPg(1, Volts(2.0), Volts(0.1));
    const auto empty_image = saveTable(ProfileTable{});
    culpeo.restore(empty_image);
    EXPECT_FALSE(culpeo.hasResult(1));
}

} // namespace
