/** @file Unit tests for Culpeo's designer-provided power-system model. */

#include <gtest/gtest.h>

#include "core/power_model.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using core::EfficiencyLine;
using core::PowerSystemModel;
using core::modelFromConfig;

TEST(EfficiencyLine, EvaluatesLine)
{
    EfficiencyLine line;
    line.slope = 0.05;
    line.intercept = 0.7;
    EXPECT_NEAR(line.at(Volts(2.0)), 0.8, 1e-12);
}

TEST(EfficiencyLine, Clamps)
{
    EfficiencyLine line;
    line.slope = 1.0;
    line.intercept = 0.0;
    EXPECT_DOUBLE_EQ(line.at(Volts(10.0)), line.max_eta);
    EXPECT_DOUBLE_EQ(line.at(Volts(0.0)), line.min_eta);
}

TEST(Model, OperatingRange)
{
    PowerSystemModel model;
    model.vhigh = Volts(2.56);
    model.voff = Volts(1.60);
    EXPECT_NEAR(model.operatingRange().value(), 0.96, 1e-12);
}

TEST(ModelFromConfig, CopiesThresholdsAndCapacitance)
{
    const auto cfg = sim::capybaraConfig();
    const PowerSystemModel model = modelFromConfig(cfg);
    EXPECT_DOUBLE_EQ(model.vhigh.value(), cfg.monitor.vhigh.value());
    EXPECT_DOUBLE_EQ(model.voff.value(), cfg.monitor.voff.value());
    EXPECT_DOUBLE_EQ(model.vout.value(), cfg.output.vout.value());
    EXPECT_DOUBLE_EQ(model.capacitance.value(),
                     cfg.capacitor.capacitance.value());
}

TEST(ModelFromConfig, EfficiencyIsAConservativeLine)
{
    const auto cfg = sim::capybaraConfig();
    const PowerSystemModel model = modelFromConfig(cfg);
    // The designer's line lower-bounds the true curve at moderate loads
    // across the operating window...
    for (double v = 1.6; v <= 2.56; v += 0.1) {
        EXPECT_LE(model.efficiency.at(Volts(v)),
                  cfg.output.efficiency.at(Volts(v), Amps(0.025)) + 1e-9)
            << "model optimistic at " << v << " V";
    }
    // ...but stays within a few percent of it (not uselessly loose).
    EXPECT_GT(model.efficiency.at(Volts(2.0)),
              cfg.output.efficiency.at(Volts(2.0)) - 0.05);
    // At very high currents the true droop can still exceed the line:
    // the PG error source of Section VII-A remains.
    EXPECT_GT(model.efficiency.at(Volts(1.7)),
              cfg.output.efficiency.at(Volts(1.7), Amps(0.08)));
}

TEST(ModelFromConfig, EsrCurveIsFrequencyDependent)
{
    const auto cfg = sim::capybaraConfig();
    const PowerSystemModel model = modelFromConfig(cfg);
    const double r_slow = model.esr.forPulseWidth(Seconds(0.1)).value();
    const double r_fast = model.esr.forPulseWidth(Seconds(1e-3)).value();
    EXPECT_GT(r_slow, r_fast);
    // Anchored to the two-branch truth.
    EXPECT_NEAR(r_slow, cfg.capacitor.apparentEsrForWidth(
                            Seconds(0.1)).value(), 0.3);
    EXPECT_NEAR(r_fast, cfg.capacitor.apparentEsrForWidth(
                            Seconds(1e-3)).value(), 0.3);
}

} // namespace
