/** @file Unit tests for the per-task profile/result tables. */

#include <gtest/gtest.h>

#include "core/profile_table.hpp"

namespace {

using namespace culpeo;
using culpeo::units::Volts;
using core::ProfileTable;
using core::RProfile;
using core::RResult;

RProfile
profile(double vstart)
{
    RProfile p;
    p.vstart = Volts(vstart);
    p.vmin = Volts(vstart - 0.3);
    p.vfinal = Volts(vstart - 0.1);
    return p;
}

TEST(ProfileTable, MissingEntriesAreEmpty)
{
    const ProfileTable table;
    EXPECT_FALSE(table.profile(1, 0).has_value());
    EXPECT_FALSE(table.result(1, 0).has_value());
}

TEST(ProfileTable, StoreAndLookup)
{
    ProfileTable table;
    table.storeProfile(1, 0, profile(2.5));
    const auto got = table.profile(1, 0);
    ASSERT_TRUE(got.has_value());
    EXPECT_DOUBLE_EQ(got->vstart.value(), 2.5);
    EXPECT_EQ(table.profileCount(), 1u);
}

TEST(ProfileTable, OverwriteReplaces)
{
    ProfileTable table;
    table.storeProfile(1, 0, profile(2.5));
    table.storeProfile(1, 0, profile(2.2));
    EXPECT_EQ(table.profileCount(), 1u);
    EXPECT_DOUBLE_EQ(table.profile(1, 0)->vstart.value(), 2.2);
}

TEST(ProfileTable, BufferConfigurationsAreDistinct)
{
    ProfileTable table;
    table.storeProfile(1, 0, profile(2.5));
    table.storeProfile(1, 7, profile(2.0));
    EXPECT_DOUBLE_EQ(table.profile(1, 0)->vstart.value(), 2.5);
    EXPECT_DOUBLE_EQ(table.profile(1, 7)->vstart.value(), 2.0);
    EXPECT_FALSE(table.profile(1, 3).has_value());
}

TEST(ProfileTable, ResultsStoredIndependently)
{
    ProfileTable table;
    RResult result;
    result.vsafe = Volts(2.1);
    table.storeResult(4, 0, result);
    EXPECT_FALSE(table.profile(4, 0).has_value());
    ASSERT_TRUE(table.result(4, 0).has_value());
    EXPECT_DOUBLE_EQ(table.result(4, 0)->vsafe.value(), 2.1);
}

TEST(ProfileTable, InvalidateAllClearsEverything)
{
    ProfileTable table;
    table.storeProfile(1, 0, profile(2.5));
    table.storeResult(1, 0, RResult{});
    table.invalidateAll();
    EXPECT_EQ(table.profileCount(), 0u);
    EXPECT_EQ(table.resultCount(), 0u);
}

TEST(ProfileTable, InvalidateBufferIsSelective)
{
    ProfileTable table;
    table.storeProfile(1, 0, profile(2.5));
    table.storeProfile(2, 0, profile(2.4));
    table.storeProfile(1, 1, profile(2.3));
    table.storeResult(1, 1, RResult{});
    table.invalidateBuffer(1);
    EXPECT_TRUE(table.profile(1, 0).has_value());
    EXPECT_TRUE(table.profile(2, 0).has_value());
    EXPECT_FALSE(table.profile(1, 1).has_value());
    EXPECT_FALSE(table.result(1, 1).has_value());
}

TEST(ProfileTable, LargeTaskIdsDoNotCollideAcrossBuffers)
{
    ProfileTable table;
    // Same low 32 bits must not alias between buffers.
    table.storeProfile(0xFFFFFFFFu, 0, profile(2.5));
    table.storeProfile(0xFFFFFFFFu, 1, profile(2.0));
    EXPECT_DOUBLE_EQ(table.profile(0xFFFFFFFFu, 0)->vstart.value(), 2.5);
    EXPECT_DOUBLE_EQ(table.profile(0xFFFFFFFFu, 1)->vstart.value(), 2.0);
}

} // namespace
