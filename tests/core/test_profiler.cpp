/** @file Unit tests for the ISR and uArch Culpeo-R profilers. */

#include <gtest/gtest.h>

#include <cmath>

#include "core/profiler.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using core::IsrProfiler;
using core::RProfile;
using core::UArchProfiler;

/** Feed a synthetic dip-and-rebound waveform to a profiler. */
template <typename Profiler>
RProfile
profileSyntheticDip(Profiler &profiler, double dip_volts,
                    double dip_duration_s)
{
    profiler.profileStart(Volts(2.5));
    // Task phase: voltage dips linearly to the bottom and back.
    const double dt = 50e-6;
    const int steps = int(dip_duration_s / dt);
    for (int i = 0; i < steps; ++i) {
        const double phase = double(i) / steps;
        const double depth = dip_volts * (phase < 0.5 ? phase * 2.0
                                                      : (1.0 - phase) * 2.0);
        profiler.tick(Seconds(dt), Volts(2.5 - depth));
    }
    profiler.profileEnd(Volts(2.5 - 0.1));
    // Rebound phase: recover toward 2.45 V.
    for (int i = 0; i < 2000; ++i) {
        const double v = 2.5 - 0.1 + 0.05 * std::min(1.0, i / 1000.0);
        profiler.tick(Seconds(1e-3), Volts(v));
    }
    return profiler.reboundEnd(Volts(2.45));
}

TEST(IsrProfiler, CapturesSlowDip)
{
    IsrProfiler profiler;
    const RProfile p = profileSyntheticDip(profiler, 0.4, 0.1);
    EXPECT_NEAR(p.vstart.value(), 2.5, 0.01);
    // 12-bit ADC at 1 kHz has plenty of samples across 100 ms.
    EXPECT_NEAR(p.vmin.value(), 2.1, 0.02);
    EXPECT_NEAR(p.vfinal.value(), 2.45, 0.01);
    EXPECT_TRUE(p.valid());
}

TEST(IsrProfiler, AliasesSubMillisecondDip)
{
    IsrProfiler profiler;
    // A 1 ms dip gives the 1 kHz sampler at most one conversion near the
    // bottom; the captured minimum is likely shallower than the truth.
    const RProfile p = profileSyntheticDip(profiler, 0.4, 1e-3);
    EXPECT_GT(p.vmin.value(), 2.1 - 1e-9);
}

TEST(IsrProfiler, OverheadOnlyWhileActive)
{
    IsrProfiler profiler;
    EXPECT_DOUBLE_EQ(profiler.overheadCurrent(Volts(2.55)).value(), 0.0);
    profiler.profileStart(Volts(2.5));
    // Task phase: full ADC power.
    EXPECT_NEAR(profiler.overheadCurrent(Volts(2.55)).value(),
                180e-6 / 2.55, 1e-9);
    profiler.profileEnd(Volts(2.4));
    // Rebound phase: duty-cycled ADC + sleep, far less than task phase.
    const double rebound = profiler.overheadCurrent(Volts(2.55)).value();
    EXPECT_GT(rebound, 0.0);
    EXPECT_LT(rebound, 180e-6 / 2.55 / 10.0);
    profiler.reboundEnd(Volts(2.45));
    EXPECT_DOUBLE_EQ(profiler.overheadCurrent(Volts(2.55)).value(), 0.0);
}

TEST(IsrProfiler, PhaseProtocolEnforced)
{
    IsrProfiler profiler;
    EXPECT_THROW(profiler.profileEnd(Volts(2.0)), culpeo::log::FatalError);
    EXPECT_THROW(profiler.reboundEnd(Volts(2.0)), culpeo::log::FatalError);
    profiler.profileStart(Volts(2.5));
    EXPECT_THROW(profiler.profileStart(Volts(2.5)), culpeo::log::FatalError);
    profiler.profileEnd(Volts(2.4));
    profiler.reboundEnd(Volts(2.45));
    // Reusable after a full cycle.
    profiler.profileStart(Volts(2.5));
    profiler.profileEnd(Volts(2.4));
    profiler.reboundEnd(Volts(2.45));
}

TEST(UArchProfiler, CapturesFastDip)
{
    UArchProfiler profiler;
    // 100 kHz sampling nails even a 1 ms dip, at 10 mV resolution.
    const RProfile p = profileSyntheticDip(profiler, 0.4, 1e-3);
    EXPECT_NEAR(p.vmin.value(), 2.1, 0.03);
    EXPECT_TRUE(p.valid());
}

TEST(UArchProfiler, QuantizesToEightBits)
{
    UArchProfiler profiler;
    const RProfile p = profileSyntheticDip(profiler, 0.4, 0.1);
    // Every reported voltage is a multiple of the 10 mV LSB.
    const double lsb = 2.56 / 256.0;
    EXPECT_NEAR(std::fmod(p.vmin.value() + 1e-9, lsb), 0.0, 1e-6);
    // Truncation makes the captured minimum conservative (<= truth).
    EXPECT_LE(p.vmin.value(), 2.1 + 1e-9);
}

TEST(UArchProfiler, TinyOverhead)
{
    UArchProfiler profiler;
    profiler.profileStart(Volts(2.5));
    EXPECT_NEAR(profiler.overheadCurrent(Volts(2.55)).value(),
                140e-9 / 2.55, 1e-12);
    profiler.profileEnd(Volts(2.4));
    profiler.reboundEnd(Volts(2.45));
    EXPECT_DOUBLE_EQ(profiler.overheadCurrent(Volts(2.55)).value(), 0.0);
}

TEST(UArchProfiler, IsrVsUArchPrecision)
{
    // On a slow dip the 12-bit ISR minimum is at least as accurate as
    // the 8-bit uArch minimum (the Fig. 10 precision gap).
    IsrProfiler isr;
    UArchProfiler uarch;
    const RProfile p_isr = profileSyntheticDip(isr, 0.37, 0.05);
    const RProfile p_uarch = profileSyntheticDip(uarch, 0.37, 0.05);
    EXPECT_LE(p_uarch.vmin.value(), p_isr.vmin.value() + 1e-9);
}

TEST(UArchProfiler, PhaseProtocolEnforced)
{
    UArchProfiler profiler;
    EXPECT_THROW(profiler.profileEnd(Volts(2.0)), culpeo::log::FatalError);
    profiler.profileStart(Volts(2.5));
    EXPECT_THROW(profiler.profileStart(Volts(2.5)), culpeo::log::FatalError);
    profiler.profileEnd(Volts(2.4));
    profiler.reboundEnd(Volts(2.45));
}

} // namespace
