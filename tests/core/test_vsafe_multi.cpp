/** @file Unit tests for Vsafe sequence composition (Section IV-A). */

#include <gtest/gtest.h>

#include "core/vsafe_multi.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using core::MultiResult;
using core::TaskRequirement;
using core::vsafeMulti;
using core::vsafeMultiExact;

const Volts kVoff{1.6};

TaskRequirement
task(const char *name, double v_energy, double vdelta)
{
    TaskRequirement req;
    req.name = name;
    req.v_energy = Volts(v_energy);
    req.vdelta = Volts(vdelta);
    return req;
}

TEST(Multi, EmptySequenceIsVoff)
{
    const MultiResult r = vsafeMulti({}, kVoff);
    EXPECT_DOUBLE_EQ(r.vsafe_multi.value(), kVoff.value());
}

TEST(Multi, SingleTaskPaysEnergyPlusDrop)
{
    // For a single task the follower requirement is Voff, so the full
    // drop becomes penalty: Vsafe = V(E) + Vdelta + Voff.
    const MultiResult r = vsafeMulti({task("t", 0.1, 0.25)}, kVoff);
    EXPECT_NEAR(r.vsafe_multi.value(), 0.1 + 0.25 + 1.6, 1e-12);
    EXPECT_NEAR(r.penalties[0].value(), 0.25, 1e-12);
}

TEST(Multi, ReboundRepaysPenaltyWhenFollowerIsDemanding)
{
    // Task 0 has a drop of 0.1, but task 1 requires Vsafe_1 = 1.9
    // (> Voff + 0.1 = 1.7): the rebound repays the drop, no penalty.
    const MultiResult r = vsafeMulti(
        {task("t0", 0.05, 0.10), task("t1", 0.10, 0.20)}, kVoff);
    // Vsafe_1 = 0.10 + 0.20 + 1.6 = 1.90. Voff + Vdelta_0 = 1.70 < 1.90.
    EXPECT_NEAR(r.per_task_vsafe[1].value(), 1.90, 1e-12);
    EXPECT_DOUBLE_EQ(r.penalties[0].value(), 0.0);
    EXPECT_NEAR(r.vsafe_multi.value(), 0.05 + 1.90, 1e-12);
}

TEST(Multi, PenaltyAppliedWhenFollowerIsCheap)
{
    // Task 0's drop floor (Voff + 0.4 = 2.0) exceeds task 1's Vsafe
    // (1.65): penalty = 2.0 - 1.65 = 0.35.
    const MultiResult r = vsafeMulti(
        {task("t0", 0.05, 0.40), task("t1", 0.05, 0.0)}, kVoff);
    EXPECT_NEAR(r.per_task_vsafe[1].value(), 1.65, 1e-12);
    EXPECT_NEAR(r.penalties[0].value(), 0.35, 1e-12);
    EXPECT_NEAR(r.vsafe_multi.value(), 0.05 + 0.35 + 1.65, 1e-12);
}

TEST(Multi, MatchesPaperSummationForm)
{
    // Vsafe_multi = sum V(E_i) + sum penalty_i + Voff.
    const std::vector<TaskRequirement> tasks = {
        task("a", 0.08, 0.30), task("b", 0.05, 0.10),
        task("c", 0.12, 0.05)};
    const MultiResult r = vsafeMulti(tasks, kVoff);
    double sum_e = 0.0;
    double sum_p = 0.0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        sum_e += tasks[i].v_energy.value();
        sum_p += r.penalties[i].value();
    }
    EXPECT_NEAR(r.vsafe_multi.value(), sum_e + sum_p + kVoff.value(),
                1e-12);
}

TEST(Multi, OrderMatters)
{
    // A drop-heavy task is cheaper when followed by a demanding task
    // (rebound repaid) than when run last.
    const TaskRequirement heavy = task("heavy", 0.02, 0.40);
    const TaskRequirement hungry = task("hungry", 0.30, 0.0);
    const double heavy_first =
        vsafeMulti({heavy, hungry}, kVoff).vsafe_multi.value();
    const double heavy_last =
        vsafeMulti({hungry, heavy}, kVoff).vsafe_multi.value();
    EXPECT_LT(heavy_first, heavy_last);
}

TEST(Multi, SequenceAtLeastAsDemandingAsAnySuffix)
{
    const std::vector<TaskRequirement> tasks = {
        task("a", 0.1, 0.2), task("b", 0.05, 0.3), task("c", 0.2, 0.1)};
    const MultiResult r = vsafeMulti(tasks, kVoff);
    for (std::size_t i = 1; i < tasks.size(); ++i)
        EXPECT_GE(r.per_task_vsafe[0].value(),
                  r.per_task_vsafe[i].value());
}

TEST(Multi, TheoremOneInduction)
{
    // Proof-sketch property: Vsafe_i - V(E_i) - penalty_i = Vsafe_{i+1},
    // so starting at Vsafe_0 never dips below Voff between tasks.
    const std::vector<TaskRequirement> tasks = {
        task("a", 0.07, 0.25), task("b", 0.02, 0.35),
        task("c", 0.15, 0.05), task("d", 0.01, 0.0)};
    const MultiResult r = vsafeMulti(tasks, kVoff);
    for (std::size_t i = 0; i + 1 < tasks.size(); ++i) {
        const double after = r.per_task_vsafe[i].value() -
                             tasks[i].v_energy.value() -
                             r.penalties[i].value();
        EXPECT_NEAR(after, r.per_task_vsafe[i + 1].value(), 1e-12);
        EXPECT_GE(after, kVoff.value() - 1e-12);
    }
}

TEST(MultiExact, NeverAboveAdditiveForm)
{
    // Composition in the V^2 domain is tighter than adding voltage
    // increments linearly.
    const std::vector<TaskRequirement> tasks = {
        task("a", 0.2, 0.1), task("b", 0.3, 0.05), task("c", 0.1, 0.2)};
    const double additive = vsafeMulti(tasks, kVoff).vsafe_multi.value();
    const double exact =
        vsafeMultiExact(tasks, kVoff).vsafe_multi.value();
    EXPECT_LE(exact, additive + 1e-9);
    EXPECT_GT(exact, kVoff.value());
}

TEST(MultiExact, SingleTaskMatchesEnergyAnchor)
{
    // One task with no drop: exact form reduces to the Voff-anchored
    // energy requirement.
    const MultiResult r = vsafeMultiExact({task("t", 0.2, 0.0)}, kVoff);
    EXPECT_NEAR(r.vsafe_multi.value(), 1.8, 1e-9);
}

TEST(Requirement, FromVsafeAndDelta)
{
    const TaskRequirement req =
        core::requirementFrom("x", Volts(2.1), Volts(0.3), kVoff);
    EXPECT_NEAR(req.v_energy.value(), 2.1 - 0.3 - 1.6, 1e-12);
    EXPECT_NEAR(req.vdelta.value(), 0.3, 1e-12);
    // Never negative even for drop-dominated results.
    const TaskRequirement clamped =
        core::requirementFrom("y", Volts(1.7), Volts(0.3), kVoff);
    EXPECT_DOUBLE_EQ(clamped.v_energy.value(), 0.0);
}

TEST(Feasibility, TheoremOneCheck)
{
    EXPECT_TRUE(core::feasibleToStart(Volts(2.0), Volts(2.0)));
    EXPECT_TRUE(core::feasibleToStart(Volts(2.1), Volts(2.0)));
    EXPECT_FALSE(core::feasibleToStart(Volts(1.99), Volts(2.0)));
}

} // namespace
