/** @file Unit tests for the Culpeo-PG Vsafe calculation (Algorithm 1). */

#include <gtest/gtest.h>

#include "core/vsafe_pg.hpp"
#include "load/library.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;
using core::PgResult;
using core::PowerSystemModel;
using core::culpeoPg;

PowerSystemModel
model()
{
    return core::modelFromConfig(sim::capybaraConfig());
}

TEST(CulpeoPg, EmptyTraceNeedsOnlyVoff)
{
    const load::SampledTrace empty(Hertz(125e3), {});
    const PgResult result = culpeoPg(empty, model());
    EXPECT_DOUBLE_EQ(result.vsafe.value(), model().voff.value());
}

TEST(CulpeoPg, ZeroCurrentTraceStaysNearVoff)
{
    const load::SampledTrace zeros(Hertz(1000.0),
                                   std::vector<Amps>(100, Amps(0.0)));
    const PgResult result = culpeoPg(zeros, model());
    EXPECT_NEAR(result.vsafe.value(), model().voff.value(), 1e-9);
}

TEST(CulpeoPg, VsafeAboveVoffForAnyRealLoad)
{
    const PgResult result = culpeoPg(load::uniform(5.0_mA, 10.0_ms),
                                     model());
    EXPECT_GT(result.vsafe.value(), model().voff.value());
    EXPECT_GT(result.vdelta.value(), 0.0);
}

TEST(CulpeoPg, VsafeGrowsWithCurrent)
{
    const PowerSystemModel m = model();
    double prev = 0.0;
    for (double ma : {5.0, 10.0, 25.0, 50.0}) {
        const PgResult result =
            culpeoPg(load::uniform(Amps(ma * 1e-3), 10.0_ms), m);
        EXPECT_GT(result.vsafe.value(), prev);
        prev = result.vsafe.value();
    }
}

TEST(CulpeoPg, VsafeGrowsWithPulseWidth)
{
    const PowerSystemModel m = model();
    const double v1 =
        culpeoPg(load::uniform(25.0_mA, 1.0_ms), m).vsafe.value();
    const double v10 =
        culpeoPg(load::uniform(25.0_mA, 10.0_ms), m).vsafe.value();
    const double v100 =
        culpeoPg(load::uniform(25.0_mA, 100.0_ms), m).vsafe.value();
    EXPECT_LT(v1, v10);
    EXPECT_LT(v10, v100);
}

TEST(CulpeoPg, EsrPickedFromWidestPulse)
{
    const PowerSystemModel m = model();
    const PgResult narrow = culpeoPg(load::uniform(25.0_mA, 1.0_ms), m);
    const PgResult wide = culpeoPg(load::uniform(25.0_mA, 100.0_ms), m);
    EXPECT_LT(narrow.esr_used.value(), wide.esr_used.value());
}

TEST(CulpeoPg, ComputeTailRaisesVsafeByItsEnergy)
{
    // Isolate the energy path with a negligible-ESR model: appending the
    // compute tail must then strictly raise Vsafe by its energy.
    PowerSystemModel m = model();
    m.esr = sim::EsrCurve::flat(Ohms(1e-4));
    const double pulse_only =
        culpeoPg(load::uniform(25.0_mA, 10.0_ms), m).vsafe.value();
    const double with_tail =
        culpeoPg(load::pulseWithCompute(25.0_mA, 10.0_ms), m)
            .vsafe.value();
    EXPECT_GT(with_tail, pulse_only);
    // The 100 ms 1.5 mA tail is low-energy: the bump is modest.
    EXPECT_LT(with_tail - pulse_only, 0.1);

    // With the full ESR model the tail still never *lowers* the
    // requirement by more than a rounding sliver.
    const PowerSystemModel full = model();
    EXPECT_GT(
        culpeoPg(load::pulseWithCompute(25.0_mA, 10.0_ms), full)
            .vsafe.value(),
        culpeoPg(load::uniform(25.0_mA, 10.0_ms), full).vsafe.value() -
            0.01);
}

TEST(CulpeoPg, DropDominatedBoundIsRespected)
{
    // For a short, intense pulse the ESR term dominates: Vsafe must be
    // at least Voff plus the modelled drop.
    const PowerSystemModel m = model();
    const PgResult result = culpeoPg(load::uniform(50.0_mA, 10.0_ms), m);
    EXPECT_GE(result.vsafe.value(),
              m.voff.value() + result.vdelta.value() * 0.9);
}

TEST(CulpeoPg, EnergyDominatedBoundIsRespected)
{
    // For a long, mild load the energy term dominates: Vsafe^2 - Voff^2
    // must cover roughly 2 E / C.
    const PowerSystemModel m = model();
    const auto profile = load::mnistCompute(); // 5 mA, 1.1 s.
    const PgResult result = culpeoPg(profile, m, Hertz(10e3));
    const double e_load = profile.energyAt(m.vout).value();
    const double v2 = result.vsafe.value() * result.vsafe.value() -
                      m.voff.value() * m.voff.value();
    EXPECT_GT(v2, 2.0 * e_load / m.capacitance.value());
}

TEST(CulpeoPg, HigherSampleRatesAgree)
{
    const PowerSystemModel m = model();
    const auto profile = load::pulseWithCompute(25.0_mA, 10.0_ms);
    const double coarse = culpeoPg(profile, m, Hertz(10e3)).vsafe.value();
    const double fine = culpeoPg(profile, m, Hertz(125e3)).vsafe.value();
    EXPECT_NEAR(coarse, fine, 0.01);
}

TEST(CulpeoPg, AgedModelRaisesVsafe)
{
    auto cfg = sim::capybaraConfig();
    cfg.capacitor.esr_multiplier = 2.0;
    cfg.capacitor.capacitance_fraction = 0.8;
    // Note: the model's capacitance comes from the datasheet (unaged),
    // but the profiled ESR curve reflects the aged part.
    const PowerSystemModel aged = core::modelFromConfig(cfg);
    const PowerSystemModel fresh = model();
    const auto profile = load::uniform(25.0_mA, 10.0_ms);
    EXPECT_GT(culpeoPg(profile, aged).vsafe.value(),
              culpeoPg(profile, fresh).vsafe.value());
}

} // namespace
