/** @file Unit tests for the Culpeo-R closed-form Vsafe (Eqs. 1-3). */

#include <gtest/gtest.h>

#include "core/vsafe_r.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using core::PowerSystemModel;
using core::RProfile;
using core::RResult;
using core::culpeoR;

PowerSystemModel
model()
{
    return core::modelFromConfig(sim::capybaraConfig());
}

RProfile
typicalProfile()
{
    RProfile p;
    p.vstart = Volts(2.50);
    p.vmin = Volts(2.10);
    p.vfinal = Volts(2.40);
    return p;
}

TEST(RProfile, ValidityChecks)
{
    EXPECT_TRUE(typicalProfile().valid());
    RProfile bad = typicalProfile();
    bad.vmin = Volts(2.6); // Above vstart.
    EXPECT_FALSE(bad.valid());
    bad = RProfile{};
    EXPECT_FALSE(bad.valid());
}

TEST(CulpeoR, RejectsInvalidProfile)
{
    EXPECT_THROW(culpeoR(RProfile{}, model()), culpeo::log::FatalError);
}

TEST(CulpeoR, ObservedDeltaIsReboundHeight)
{
    const RResult r = culpeoR(typicalProfile(), model());
    EXPECT_NEAR(r.vdelta_observed.value(), 0.30, 1e-12);
}

TEST(CulpeoR, DeltaSafeScalesPerEquation1c)
{
    const PowerSystemModel m = model();
    const RProfile p = typicalProfile();
    const RResult r = culpeoR(p, m);
    const double expected = 0.30 *
        (2.10 * m.efficiency.at(Volts(2.10))) /
        (m.voff.value() * m.efficiency.at(m.voff));
    EXPECT_NEAR(r.vdelta_safe.value(), expected, 1e-9);
    // At Voff the booster draws more current at lower efficiency, so the
    // extrapolated drop exceeds the observed one.
    EXPECT_GT(r.vdelta_safe.value(), r.vdelta_observed.value());
}

TEST(CulpeoR, EnergyComponentMatchesEquation3)
{
    const PowerSystemModel m = model();
    const RProfile p = typicalProfile();
    const RResult r = culpeoR(p, m);
    const double voff = m.voff.value();
    const double expected_sq =
        m.efficiency.at(p.vstart) / m.efficiency.at(m.voff) *
            (2.50 * 2.50 - 2.40 * 2.40) +
        voff * voff;
    EXPECT_NEAR(r.vsafe_energy.value(), std::sqrt(expected_sq), 1e-9);
}

TEST(CulpeoR, VsafeIsSumOfComponents)
{
    const RResult r = culpeoR(typicalProfile(), model());
    EXPECT_NEAR(r.vsafe.value(),
                r.vsafe_energy.value() + r.vdelta_safe.value(), 1e-12);
}

TEST(CulpeoR, NoDropNoEnergyGivesVoff)
{
    RProfile p;
    p.vstart = Volts(2.0);
    p.vmin = Volts(2.0);
    p.vfinal = Volts(2.0);
    const RResult r = culpeoR(p, model());
    EXPECT_NEAR(r.vsafe.value(), model().voff.value(), 1e-9);
}

TEST(CulpeoR, BiggerDropBiggerVsafe)
{
    RProfile small = typicalProfile();
    RProfile large = typicalProfile();
    large.vmin = Volts(1.90);
    EXPECT_GT(culpeoR(large, model()).vsafe.value(),
              culpeoR(small, model()).vsafe.value());
}

TEST(CulpeoR, MoreEnergyBiggerVsafe)
{
    RProfile less = typicalProfile();
    RProfile more = typicalProfile();
    more.vfinal = Volts(2.30); // Consumed more energy.
    more.vmin = Volts(2.00);   // Same rebound height.
    EXPECT_GT(culpeoR(more, model()).vsafe.value(),
              culpeoR(less, model()).vsafe.value());
}

TEST(CulpeoR, NoiseWithVfinalBelowVminIsClamped)
{
    RProfile p = typicalProfile();
    p.vfinal = Volts(2.05); // ADC noise below the minimum.
    p.vmin = Volts(2.10);
    const RResult r = culpeoR(p, model());
    EXPECT_GE(r.vdelta_observed.value(), 0.0);
    EXPECT_GE(r.vsafe.value(), model().voff.value());
}

TEST(CulpeoR, StartVoltageIndependenceApproximately)
{
    // Profiling the same physical task from different start voltages
    // should produce similar Vsafe. Model a task consuming energy dE
    // (V^2 difference constant) with the same ESR drop.
    const PowerSystemModel m = model();
    const double dsq = 2.50 * 2.50 - 2.40 * 2.40; // V^2 consumed.
    RProfile high;
    high.vstart = Volts(2.50);
    high.vfinal = Volts(2.40);
    high.vmin = Volts(2.10);
    RProfile low;
    low.vstart = Volts(2.20);
    low.vfinal = Volts(std::sqrt(2.20 * 2.20 - dsq));
    low.vmin = Volts(low.vfinal.value() - 0.30);
    const double v_high = culpeoR(high, m).vsafe.value();
    const double v_low = culpeoR(low, m).vsafe.value();
    EXPECT_NEAR(v_high, v_low, 0.08);
}

} // namespace
