/**
 * @file
 * TraceField acceptance suite (DESIGN.md §18): the recorded-trace
 * harvest field honors the piecewise-constant HarvestField contract,
 * a field → trace file → replay round trip drives the lockstep batch
 * kernel and the scalar sim::Device reference to bit-identical
 * outcomes under exact_replay, and a fleet run over a TraceField stays
 * shard-count invariant. This is the tentpole's closing loop: traces
 * ride the same seam the parametric skies use, so no engine changes —
 * and no engine divergence — are possible.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "batch/engine.hpp"
#include "env/field.hpp"
#include "env/trace.hpp"
#include "env/trace_reader.hpp"
#include "fleet/fleet.hpp"
#include "load/profile.hpp"
#include "sched/policy.hpp"
#include "sched/trial.hpp"
#include "sim/power_system.hpp"
#include "util/random.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;

constexpr double kExactTol = 1e-9;

std::uint64_t
baseSeed()
{
    const char *value = std::getenv("CULPEO_FUZZ_SEED");
    if (value == nullptr || *value == '\0')
        return 20260809;
    return std::strtoull(value, nullptr, 10);
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

env::SolarConfig
testSolar()
{
    env::SolarConfig solar;
    solar.peak = Watts(8e-3);
    solar.day_length = Seconds(120.0);
    solar.sample_period = Seconds(0.5);
    solar.cloud_depth = 0.6;
    solar.cell_size = 10.0;
    solar.shading_depth = 0.3;
    solar.seed = 21;
    return solar;
}

/**
 * Record the solar sky at one position through the on-disk round trip
 * and reopen it as a field. Rate 2 Hz matches the 0.5 s sample period,
 * so the capture is alias-free.
 */
env::TraceField
recordedSolarField(const std::string &name, Seconds duration)
{
    const env::SolarDiurnalField sky(testSolar());
    const env::TraceData data = env::recordField(
        sky, env::Position{30.0, 40.0}, duration, Hertz(2.0));
    const std::string path = tempPath(name);
    EXPECT_TRUE(env::writeTrace(path, data).ok());
    util::Expected<env::TraceField, env::TraceError> field =
        env::TraceField::open(path);
    EXPECT_TRUE(field.ok()) << field.error().message();
    return std::move(*field);
}

TEST(TraceFieldContract, HoldsEachSampleOverItsInterval)
{
    env::TraceData data;
    data.sample_rate = Hertz(1.0);
    data.time_s = {0.0, 1.0, 2.5, 7.0};
    data.current_a = {1e-3, 2e-3, 3e-3, 4e-3};
    data.voltage_v = {2.0, 2.0, 2.0, 2.0};
    const env::TraceField field(data);
    const env::Position pos{};

    EXPECT_DOUBLE_EQ(field.powerAt(pos, Seconds(0.0)).value(), 2e-3);
    EXPECT_DOUBLE_EQ(field.powerAt(pos, Seconds(0.99)).value(), 2e-3);
    EXPECT_DOUBLE_EQ(field.powerAt(pos, Seconds(1.0)).value(), 4e-3);
    EXPECT_DOUBLE_EQ(field.powerAt(pos, Seconds(2.5)).value(), 6e-3);
    EXPECT_DOUBLE_EQ(field.powerAt(pos, Seconds(100.0)).value(), 8e-3);
    // Before the first sample, the first value holds backwards.
    EXPECT_DOUBLE_EQ(field.powerAt(pos, Seconds(-5.0)).value(), 2e-3);

    EXPECT_DOUBLE_EQ(field.constantUntil(pos, Seconds(0.2)).value(), 1.0);
    EXPECT_DOUBLE_EQ(field.constantUntil(pos, Seconds(1.0)).value(), 2.5);
    EXPECT_DOUBLE_EQ(field.constantUntil(pos, Seconds(3.0)).value(), 7.0);
    EXPECT_TRUE(
        std::isinf(field.constantUntil(pos, Seconds(7.0)).value()));
    EXPECT_DOUBLE_EQ(field.endTime().value(), 7.0);

    // Power varies, so there is no constant-power fast path.
    EXPECT_FALSE(field.constantPower(pos).has_value());

    // Position-independence: a trace records one point in space.
    const env::Position far{1e6, -1e6};
    EXPECT_DOUBLE_EQ(field.powerAt(far, Seconds(1.5)).value(),
                     field.powerAt(pos, Seconds(1.5)).value());
}

TEST(TraceFieldContract, FlatTraceReportsConstantPower)
{
    env::TraceData data;
    data.sample_rate = Hertz(1.0);
    for (int i = 0; i < 10; ++i) {
        data.time_s.push_back(double(i));
        data.current_a.push_back(2e-3);
        data.voltage_v.push_back(1.5);
    }
    const env::TraceField field(data);
    const std::optional<Watts> constant =
        field.constantPower(env::Position{});
    ASSERT_TRUE(constant.has_value());
    EXPECT_DOUBLE_EQ(constant->value(), 3e-3);
}

TEST(TraceFieldContract, RecordFieldCapturesPiecewiseSkyExactly)
{
    const env::SolarDiurnalField sky(testSolar());
    const env::Position pos{30.0, 40.0};
    const env::TraceData data =
        env::recordField(sky, pos, Seconds(30.0), Hertz(2.0));
    ASSERT_EQ(data.size(), 60U);
    const env::TraceField field(data);
    // At every recorded instant the replay equals the source exactly
    // (bus_voltage defaults to 1 V, so I × V round-trips the power).
    for (std::size_t i = 0; i < data.size(); ++i) {
        const Seconds t(data.time_s[i]);
        EXPECT_EQ(field.powerAt(pos, t).value(),
                  sky.powerAt(pos, t).value())
            << "sample " << i;
    }
}

// --- Batch-vs-scalar differential under a replayed trace -----------

struct Population
{
    std::vector<batch::LaneSpec> specs;
    std::vector<std::unique_ptr<load::CurrentProfile>> profiles;
    std::vector<std::unique_ptr<env::FieldHarvester>> views;
};

load::CurrentProfile *
randomProfile(Population &pop, util::Rng &rng)
{
    std::vector<load::Segment> segments;
    const int count = 1 + int(rng.uniformInt(3));
    for (int s = 0; s < count; ++s)
        segments.push_back({Seconds(rng.uniform(0.5e-3, 20e-3)),
                            Amps(rng.uniform(1e-3, 40e-3))});
    pop.profiles.push_back(std::make_unique<load::CurrentProfile>(
        "piecewise", std::move(segments)));
    return pop.profiles.back().get();
}

batch::LaneOp
randomOp(Population &pop, util::Rng &rng,
         const sim::PowerSystemConfig &config)
{
    const Volts voff = config.monitor.voff;
    const Volts vhigh = config.monitor.vhigh;
    switch (rng.uniformInt(4)) {
    case 0: {
        const Volts level(rng.uniform(voff.value() + 0.02, vhigh.value()));
        const Seconds deadline(rng.uniform(0.5, 10.0));
        return batch::LaneOp::waitLevel(level, deadline);
    }
    case 1:
        return batch::LaneOp::waitEnabled(Seconds(rng.uniform(0.5, 8.0)));
    case 2:
        return batch::LaneOp::runProfile(randomProfile(pop, rng),
                                         Seconds(50e-6));
    default:
        return batch::LaneOp::idleFor(Seconds(rng.uniform(0.05, 2.0)));
    }
}

Population
randomPopulation(const env::HarvestField &field, std::uint64_t seed,
                 std::size_t lanes)
{
    Population pop;
    util::Rng rng(seed);
    const sim::PowerSystemConfig config = sim::capybaraConfig();
    for (std::size_t l = 0; l < lanes; ++l) {
        batch::LaneSpec spec;
        spec.config = config;
        spec.vstart = Volts(rng.uniform(config.monitor.voff.value() + 0.1,
                                        config.monitor.vhigh.value()));
        spec.start_enabled = true;
        pop.views.push_back(std::make_unique<env::FieldHarvester>(
            field, env::Position{rng.uniform(0.0, 100.0),
                                 rng.uniform(0.0, 100.0)}));
        spec.harvester = pop.views.back().get();
        const int ops = 3 + int(rng.uniformInt(5));
        for (int i = 0; i < ops; ++i)
            spec.program.push_back(randomOp(pop, rng, config));
        pop.specs.push_back(spec);
    }
    return pop;
}

void
expectExactMatch(const batch::LaneResult &kernel,
                 const batch::LaneResult &scalar, std::uint64_t seed,
                 std::size_t lane)
{
    const std::string where = "seed " + std::to_string(seed) + " lane " +
                              std::to_string(lane);
    ASSERT_EQ(kernel.ops.size(), scalar.ops.size()) << where;
    for (std::size_t i = 0; i < kernel.ops.size(); ++i) {
        const batch::OpOutcome &k = kernel.ops[i];
        const batch::OpOutcome &s = scalar.ops[i];
        ASSERT_EQ(int(k.kind), int(s.kind)) << where << " op " << i;
        EXPECT_EQ(int(k.wait_status), int(s.wait_status))
            << where << " op " << i;
        EXPECT_NEAR(k.elapsed.value(), s.elapsed.value(), kExactTol)
            << where << " op " << i;
        EXPECT_NEAR(k.voltage.value(), s.voltage.value(), kExactTol)
            << where << " op " << i;
        EXPECT_EQ(k.diagnostic, s.diagnostic) << where << " op " << i;
        EXPECT_EQ(k.completed, s.completed) << where << " op " << i;
        EXPECT_EQ(k.power_failed, s.power_failed) << where << " op " << i;
        EXPECT_NEAR(k.vmin.value(), s.vmin.value(), kExactTol)
            << where << " op " << i;
    }
    EXPECT_EQ(kernel.power_failures, scalar.power_failures) << where;
    EXPECT_NEAR(kernel.end_time.value(), scalar.end_time.value(),
                kExactTol)
        << where;
    EXPECT_NEAR(kernel.vend.value(), scalar.vend.value(), kExactTol)
        << where;
}

TEST(TraceFieldDifferential, ExactReplayMatchesScalarUnderRecordedTrace)
{
    const env::TraceField field =
        recordedSolarField("trace_diff.ctrace", Seconds(60.0));
    for (std::uint64_t round = 0; round < 4; ++round) {
        const std::uint64_t seed = baseSeed() + 5000 + round;
        Population pop = randomPopulation(field, seed, 8);
        batch::BatchOptions options;
        options.exact_replay = true;
        const std::vector<batch::LaneResult> kernel =
            batch::runPopulation(pop.specs, options);
        for (std::size_t l = 0; l < pop.specs.size(); ++l) {
            const batch::LaneResult scalar =
                batch::runLaneScalar(pop.specs[l]);
            expectExactMatch(kernel[l], scalar, seed, l);
        }
    }
}

TEST(TraceFieldDifferential, RecoveredTraceStillReplaysBitIdentically)
{
    // Corrupt one mid-trace block, recover under Skip, and the
    // recovered view must still drive both executors identically: the
    // recovery decision is made once at decode time, never per engine.
    const env::SolarDiurnalField sky(testSolar());
    const env::TraceData data = env::recordField(
        sky, env::Position{30.0, 40.0}, Seconds(60.0), Hertz(2.0));
    const std::string path = tempPath("trace_diff_corrupt.ctrace");
    env::TraceWriteOptions write;
    write.block_samples = 16;
    ASSERT_TRUE(env::writeTrace(path, data, write).ok());
    {
        std::fstream file(path, std::ios::binary | std::ios::in |
                                    std::ios::out);
        ASSERT_TRUE(file.is_open());
        file.seekp(64 + 400 + 16 + 3); // Block 1 payload byte.
        char byte = 0;
        file.read(&byte, 1);
        byte = char(byte ^ 0x40);
        file.seekp(64 + 400 + 16 + 3);
        file.write(&byte, 1);
    }
    env::TraceReadOptions options;
    options.mode = env::RecoveryMode::Skip;
    util::Expected<env::TraceField, env::TraceError> field =
        env::TraceField::open(path, options);
    ASSERT_TRUE(field.ok()) << field.error().message();
    ASSERT_TRUE(field->stats().corrupted());
    const std::uint64_t seed = baseSeed() + 6000;
    Population pop = randomPopulation(*field, seed, 6);
    batch::BatchOptions batch_options;
    batch_options.exact_replay = true;
    const std::vector<batch::LaneResult> kernel =
        batch::runPopulation(pop.specs, batch_options);
    for (std::size_t l = 0; l < pop.specs.size(); ++l)
        expectExactMatch(kernel[l], batch::runLaneScalar(pop.specs[l]),
                         seed, l);
}

TEST(TraceFieldFleet, ShardCountInvariantUnderTraceField)
{
    const env::TraceField field =
        recordedSolarField("trace_fleet.ctrace", Seconds(60.0));

    sched::AppSpec ps = apps::periodicSensing();
    sched::AppSpec rr = apps::responsiveReporting();
    sched::CulpeoPolicy culpeo_policy;
    sched::CatnapPolicy catnap_policy;
    culpeo_policy.initialize(ps);
    catnap_policy.initialize(rr);

    fleet::FleetSpec spec;
    spec.cohorts = {
        {"ps-culpeo", &ps, &culpeo_policy, {}, 0.6},
        {"rr-catnap", &rr, &catnap_policy, {}, 0.4},
    };
    spec.devices = 24;
    spec.capacitance_scale = {0.9, 1.1};
    spec.extent = 100.0;
    spec.field = &field;
    spec.duration = Seconds(45.0);
    spec.seed = 29;

    const auto bytes = [](const fleet::SummaryReport &report) {
        std::ostringstream out;
        report.writeJsonl(out);
        report.writeCsv(out);
        return out.str();
    };
    fleet::FleetOptions one;
    one.shard_devices = 1;
    fleet::FleetOptions five;
    five.shard_devices = 5;
    const fleet::SummaryReport a = fleet::runFleet(spec, one);
    const fleet::SummaryReport b = fleet::runFleet(spec, five);
    EXPECT_EQ(bytes(a), bytes(b))
        << "trace-replay fleets must stay shard-count invariant";
    EXPECT_GT(a.overallCaptureRate(), 0.0);
}

TEST(TraceFieldTrial, TrialBuilderEnvironmentAcceptsTraceField)
{
    const env::TraceField field =
        recordedSolarField("trace_trial.ctrace", Seconds(60.0));
    sched::AppSpec ps = apps::periodicSensing();
    sched::CulpeoPolicy policy;
    policy.initialize(ps);

    const sched::TrialResult built = TrialBuilder()
                                         .app(ps)
                                         .policy(policy)
                                         .environment(field)
                                         .duration(Seconds(45.0))
                                         .seed(77)
                                         .run();

    const env::FieldHarvester view(field, env::Position{});
    sched::TrialConfig config;
    config.duration = Seconds(45.0);
    config.seed = 77;
    config.harvester = &view;
    const sched::TrialResult manual =
        sched::runTrialWith(ps, policy, config);
    EXPECT_EQ(built.power_failures, manual.power_failures);
    EXPECT_EQ(built.background_runs, manual.background_runs);
    ASSERT_EQ(built.per_event.size(), manual.per_event.size());
    for (std::size_t i = 0; i < built.per_event.size(); ++i) {
        EXPECT_EQ(built.per_event[i].arrived, manual.per_event[i].arrived);
        EXPECT_EQ(built.per_event[i].captured,
                  manual.per_event[i].captured);
    }
}

} // namespace
