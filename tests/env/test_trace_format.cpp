/**
 * @file
 * Format-level suite for the harvest-trace container (DESIGN.md §18):
 * writer/reader round trip, the full malformed-input taxonomy, the
 * three recovery modes with their TraceStats accounting and telemetry
 * side channel, the streaming downsampler, and the checked-in corrupt
 * fixture corpus under tests/data/traces/.
 *
 * The fixtures are deterministic byte edits of one generated valid
 * trace, so the corpus is reproducible: running this binary with
 * CULPEO_TRACE_FIXTURE_OUT=<dir> rewrites the corpus, and
 * TraceFixtures.CheckedInCorpusMatchesGenerator pins the checked-in
 * bytes to the generator so the two cannot drift apart.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "env/trace.hpp"
#include "env/trace_reader.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;

std::string
tracesDir()
{
    return std::string(CULPEO_TEST_DATA_DIR) + "/traces";
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

/** The one deterministic series every fixture derives from. */
env::TraceData
fixtureSeries()
{
    env::TraceData data;
    data.sample_rate = Hertz(8.0); // Period 0.125 s: exact in binary.
    for (int i = 0; i < 64; ++i) {
        data.time_s.push_back(double(i) * 0.125);
        data.current_a.push_back(double(i + 1) * 1e-4);
        data.voltage_v.push_back(3.0 + double(i % 4) * 0.25);
    }
    return data;
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
writeFileBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << path;
    out.write(bytes.data(), std::streamsize(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

void
patchU32(std::string &bytes, std::size_t offset, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        bytes[offset + std::size_t(i)] = char((v >> (8 * i)) & 0xFF);
}

void
patchF64(std::string &bytes, std::size_t offset, double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i)
        bytes[offset + std::size_t(i)] = char((bits >> (8 * i)) & 0xFF);
}

/** Recompute and patch the payload CRC of the block at @p block_off. */
void
resealBlock(std::string &bytes, std::size_t block_off,
            std::size_t payload_bytes)
{
    const std::uint32_t crc = env::crc32(
        bytes.data() + block_off + env::kTraceBlockHeaderSize,
        payload_bytes);
    patchU32(bytes, block_off + 12, crc);
}

/**
 * The fixture corpus: name -> deterministic byte edit of the valid
 * file. Layout of the valid file (64 samples, 16 per block): header at
 * 0, block k at 64 + k * 400 (16-byte block header + 3 * 128-byte
 * columns).
 */
constexpr std::size_t kBlockBytes = 400; // 16 + 3 * 16 * 8.
constexpr std::size_t kBlockPayload = 384;

std::string
validBytes()
{
    const std::string path = tempPath("trace_fixture_gen.ctrace");
    env::TraceWriteOptions options;
    options.block_samples = 16;
    const util::Expected<void, env::TraceError> wrote =
        env::writeTrace(path, fixtureSeries(), options);
    EXPECT_TRUE(wrote.ok());
    return readFileBytes(path);
}

std::string
truncatedBytes(const std::string &valid)
{
    // Cut block 1 mid-payload.
    return valid.substr(0, 64 + kBlockBytes + 200);
}

std::string
crcFlipBytes(std::string valid)
{
    // One flipped bit inside block 1's payload: its CRC must catch it.
    valid[64 + kBlockBytes + 16 + 10] ^= char(0x01);
    return valid;
}

std::string
nanSampleBytes(std::string valid)
{
    // Block 2, current[3] = NaN, CRC resealed so only sample
    // validation can catch it.
    const std::size_t block_off = 64 + 2 * kBlockBytes;
    const std::size_t current3 =
        block_off + env::kTraceBlockHeaderSize + 8 * 16 + 8 * 3;
    patchF64(valid, current3, std::nan(""));
    resealBlock(valid, block_off, kBlockPayload);
    return valid;
}

std::string
nonmonoBytes(std::string valid)
{
    // Block 0: swap time[5] and time[6]; the decoder must reject the
    // sample that steps backwards. CRC resealed.
    const std::size_t block_off = 64;
    const std::size_t time5 = block_off + env::kTraceBlockHeaderSize + 40;
    patchF64(valid, time5, 6.0 * 0.125);
    patchF64(valid, time5 + 8, 5.0 * 0.125);
    resealBlock(valid, block_off, kBlockPayload);
    return valid;
}

struct Fixture
{
    const char *name;
    std::string (*make)(const std::string &valid);
};

std::string
identityBytes(const std::string &valid)
{
    return valid;
}

std::string
crcFlipAdapter(const std::string &valid)
{
    return crcFlipBytes(valid);
}

std::string
nanAdapter(const std::string &valid)
{
    return nanSampleBytes(valid);
}

std::string
nonmonoAdapter(const std::string &valid)
{
    return nonmonoBytes(valid);
}

const Fixture kFixtures[] = {
    {"valid.ctrace", identityBytes},
    {"truncated.ctrace", truncatedBytes},
    {"crc_flip.ctrace", crcFlipAdapter},
    {"nan_sample.ctrace", nanAdapter},
    {"nonmono.ctrace", nonmonoAdapter},
};

TEST(TraceRoundTrip, WriteThenReadIsExact)
{
    const env::TraceData data = fixtureSeries();
    const std::string path = tempPath("trace_round_trip.ctrace");
    ASSERT_TRUE(env::writeTrace(path, data).ok());

    const util::Expected<env::TraceReader, env::TraceError> reader =
        env::TraceReader::open(path);
    ASSERT_TRUE(reader.ok()) << reader.error().message();
    ASSERT_EQ(reader->size(), data.size());
    EXPECT_TRUE(reader->zeroCopy());
    EXPECT_FALSE(reader->stats().corrupted());
    EXPECT_EQ(reader->sampleRate().value(), data.sample_rate.value());
    for (std::size_t i = 0; i < data.size(); ++i) {
        const env::TraceReader::Sample s = reader->sampleAt(i);
        EXPECT_EQ(s.time_s, data.time_s[i]) << i;
        EXPECT_EQ(s.current_a, data.current_a[i]) << i;
        EXPECT_EQ(s.voltage_v, data.voltage_v[i]) << i;
    }
}

TEST(TraceRoundTrip, SmallBlocksAndOddTailRoundTrip)
{
    env::TraceData data = fixtureSeries();
    data.time_s.resize(37); // Odd tail: 37 = 5 blocks of 7 + 2.
    data.current_a.resize(37);
    data.voltage_v.resize(37);
    const std::string path = tempPath("trace_odd_tail.ctrace");
    env::TraceWriteOptions options;
    options.block_samples = 7;
    ASSERT_TRUE(env::writeTrace(path, data, options).ok());
    const util::Expected<env::TraceReader, env::TraceError> reader =
        env::TraceReader::open(path);
    ASSERT_TRUE(reader.ok()) << reader.error().message();
    ASSERT_EQ(reader->size(), 37U);
    EXPECT_EQ(reader->stats().blocks_total, 6U);
    for (std::size_t i = 0; i < 37; ++i)
        EXPECT_EQ(reader->sampleAt(i).time_s, data.time_s[i]);
}

TEST(TraceWriter, RefusesDataItCouldNotDecodeBack)
{
    const std::string path = tempPath("trace_writer_reject.ctrace");

    env::TraceData empty;
    EXPECT_EQ(env::writeTrace(path, empty).error().code,
              env::TraceErrorCode::EmptyTrace);

    env::TraceData ragged = fixtureSeries();
    ragged.current_a.pop_back();
    EXPECT_EQ(env::writeTrace(path, ragged).error().code,
              env::TraceErrorCode::Truncated);

    env::TraceData nan_value = fixtureSeries();
    nan_value.voltage_v[3] = std::nan("");
    EXPECT_EQ(env::writeTrace(path, nan_value).error().code,
              env::TraceErrorCode::NonFiniteSample);

    env::TraceData dup = fixtureSeries();
    dup.time_s[10] = dup.time_s[9];
    EXPECT_EQ(env::writeTrace(path, dup).error().code,
              env::TraceErrorCode::DuplicateTime);

    env::TraceData backwards = fixtureSeries();
    backwards.time_s[10] = backwards.time_s[9] - 0.01;
    EXPECT_EQ(env::writeTrace(path, backwards).error().code,
              env::TraceErrorCode::NonMonotonicTime);

    EXPECT_EQ(env::writeTrace("/nonexistent-dir/x.ctrace",
                              fixtureSeries())
                  .error()
                  .code,
              env::TraceErrorCode::Io);
}

TEST(TraceTaxonomy, HeaderDamageFailsEveryMode)
{
    const std::string valid = validBytes();
    const std::string path = tempPath("trace_header_damage.ctrace");

    struct Case
    {
        const char *what;
        std::string bytes;
        env::TraceErrorCode code;
    };
    std::string bad_magic = valid;
    bad_magic[0] = 'X';
    std::string bad_version = valid;
    bad_version[4] = char(9);
    // Re-seal the header CRC so only the version check can fire.
    patchU32(bad_version, 60, env::crc32(bad_version.data(), 60));
    std::string bad_crc = valid;
    bad_crc[33] ^= char(0x10); // sample_count byte: CRC catches it.
    std::string bad_rate = valid;
    patchF64(bad_rate, 8, -4.0);
    patchU32(bad_rate, 60, env::crc32(bad_rate.data(), 60));
    const Case cases[] = {
        {"short file", valid.substr(0, 40), env::TraceErrorCode::Truncated},
        {"bad magic", bad_magic, env::TraceErrorCode::BadMagic},
        {"future version", bad_version, env::TraceErrorCode::BadVersion},
        {"header bit flip", bad_crc, env::TraceErrorCode::HeaderCorrupt},
        {"negative rate", bad_rate, env::TraceErrorCode::HeaderCorrupt},
    };
    for (const Case &c : cases) {
        writeFileBytes(path, c.bytes);
        for (const env::RecoveryMode mode :
             {env::RecoveryMode::Strict, env::RecoveryMode::Clamp,
              env::RecoveryMode::Skip}) {
            env::TraceReadOptions options;
            options.mode = mode;
            const util::Expected<env::TraceReader, env::TraceError> r =
                env::TraceReader::open(path, options);
            ASSERT_FALSE(r.ok())
                << c.what << " under " << env::recoveryModeName(mode);
            EXPECT_EQ(r.error().code, c.code)
                << c.what << " under " << env::recoveryModeName(mode);
        }
    }

    const util::Expected<env::TraceReader, env::TraceError> missing =
        env::TraceReader::open(tempPath("no_such_trace.ctrace"));
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().code, env::TraceErrorCode::Io);
}

TEST(TraceTaxonomy, StrictFailsWithTheFirstLocatedError)
{
    const std::string path = tempPath("trace_strict.ctrace");
    writeFileBytes(path, crcFlipBytes(validBytes()));
    const util::Expected<env::TraceReader, env::TraceError> r =
        env::TraceReader::open(path); // Strict is the default.
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, env::TraceErrorCode::BlockCrcMismatch);
    EXPECT_EQ(r.error().block, 1U);
    EXPECT_EQ(r.error().byte_offset, 64U + kBlockBytes);
    EXPECT_NE(r.error().message().find("block_crc_mismatch"),
              std::string::npos);
}

TEST(TraceRecovery, CrcFailedBlockIsDroppedZeroCopy)
{
    const std::string path = tempPath("trace_drop_block.ctrace");
    writeFileBytes(path, crcFlipBytes(validBytes()));
    for (const env::RecoveryMode mode :
         {env::RecoveryMode::Clamp, env::RecoveryMode::Skip}) {
        env::TraceReadOptions options;
        options.mode = mode;
        const util::Expected<env::TraceReader, env::TraceError> r =
            env::TraceReader::open(path, options);
        ASSERT_TRUE(r.ok()) << r.error().message();
        // Whole-block damage keeps the mmap'd fast path.
        EXPECT_TRUE(r->zeroCopy());
        EXPECT_EQ(r->size(), 48U);
        EXPECT_EQ(r->stats().blocks_total, 4U);
        EXPECT_EQ(r->stats().blocks_dropped, 1U);
        EXPECT_EQ(r->stats().samples_dropped, 16U);
        EXPECT_TRUE(r->stats().corrupted());
        ASSERT_FALSE(r->stats().errors.empty());
        EXPECT_EQ(r->stats().errors.front().code,
                  env::TraceErrorCode::BlockCrcMismatch);
        // Indexing is continuous across the dropped block: sample 16
        // is now block 2's first sample (t = 32 * 0.125).
        EXPECT_EQ(r->sampleAt(15).time_s, 15.0 * 0.125);
        EXPECT_EQ(r->sampleAt(16).time_s, 32.0 * 0.125);
        // Time lookup over the gap resolves to the last pre-gap sample.
        EXPECT_EQ(r->indexFor(2.5), 15U);
    }
}

TEST(TraceRecovery, ClampHoldsLastGoodValueOnTheTimeGrid)
{
    const std::string path = tempPath("trace_clamp.ctrace");
    writeFileBytes(path, nanSampleBytes(validBytes()));
    env::TraceReadOptions options;
    options.mode = env::RecoveryMode::Clamp;
    const util::Expected<env::TraceReader, env::TraceError> r =
        env::TraceReader::open(path, options);
    ASSERT_TRUE(r.ok()) << r.error().message();
    EXPECT_FALSE(r->zeroCopy()); // Sample repair materializes.
    EXPECT_EQ(r->size(), 64U);   // The time grid is preserved.
    EXPECT_EQ(r->stats().samples_clamped, 1U);
    EXPECT_EQ(r->stats().samples_dropped, 0U);
    // Sample 35 (block 2, index 3) keeps its timestamp but carries
    // sample 34's current.
    const env::TraceData series = fixtureSeries();
    EXPECT_EQ(r->sampleAt(35).time_s, series.time_s[35]);
    EXPECT_EQ(r->sampleAt(35).current_a, series.current_a[34]);
    EXPECT_EQ(r->sampleAt(36).current_a, series.current_a[36]);
}

TEST(TraceRecovery, SkipDropsTheCorruptSample)
{
    const std::string path = tempPath("trace_skip.ctrace");
    writeFileBytes(path, nanSampleBytes(validBytes()));
    env::TraceReadOptions options;
    options.mode = env::RecoveryMode::Skip;
    const util::Expected<env::TraceReader, env::TraceError> r =
        env::TraceReader::open(path, options);
    ASSERT_TRUE(r.ok()) << r.error().message();
    EXPECT_FALSE(r->zeroCopy());
    EXPECT_EQ(r->size(), 63U);
    EXPECT_EQ(r->stats().samples_clamped, 0U);
    EXPECT_EQ(r->stats().samples_dropped, 1U);
    const env::TraceData series = fixtureSeries();
    EXPECT_EQ(r->sampleAt(34).time_s, series.time_s[34]);
    EXPECT_EQ(r->sampleAt(35).time_s, series.time_s[36]);
}

TEST(TraceRecovery, BadTimestampIsDroppedEvenUnderClamp)
{
    const std::string path = tempPath("trace_nonmono.ctrace");
    writeFileBytes(path, nonmonoBytes(validBytes()));
    for (const env::RecoveryMode mode :
         {env::RecoveryMode::Clamp, env::RecoveryMode::Skip}) {
        env::TraceReadOptions options;
        options.mode = mode;
        const util::Expected<env::TraceReader, env::TraceError> r =
            env::TraceReader::open(path, options);
        ASSERT_TRUE(r.ok()) << r.error().message();
        EXPECT_EQ(r->size(), 63U)
            << env::recoveryModeName(mode);
        EXPECT_EQ(r->stats().samples_dropped, 1U);
        ASSERT_FALSE(r->stats().errors.empty());
        EXPECT_EQ(r->stats().errors.front().code,
                  env::TraceErrorCode::NonMonotonicTime);
    }
}

TEST(TraceRecovery, OutOfRangeAndTrailingAndZeroBlocks)
{
    const std::string valid = validBytes();
    const std::string path = tempPath("trace_misc.ctrace");

    // Out-of-range current (finite but past the plausibility bound).
    std::string hot = valid;
    patchF64(hot, 64 + env::kTraceBlockHeaderSize + 8 * 16, 5000.0);
    resealBlock(hot, 64, kBlockPayload);
    writeFileBytes(path, hot);
    env::TraceReadOptions skip;
    skip.mode = env::RecoveryMode::Skip;
    util::Expected<env::TraceReader, env::TraceError> r =
        env::TraceReader::open(path, skip);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->stats().errors.front().code,
              env::TraceErrorCode::OutOfRangeCurrent);
    EXPECT_EQ(r->size(), 63U);

    // The bound is an option: raise it and the same file is clean.
    env::TraceReadOptions lax = skip;
    lax.max_current_a = 10000.0;
    r = env::TraceReader::open(path, lax);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->stats().corrupted());

    // Trailing garbage past the declared sample count.
    std::string trailing = valid + std::string(11, '\x5A');
    writeFileBytes(path, trailing);
    EXPECT_EQ(env::TraceReader::open(path).error().code,
              env::TraceErrorCode::TrailingData);
    r = env::TraceReader::open(path, skip);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->size(), 64U);
    EXPECT_TRUE(r->zeroCopy());
    EXPECT_EQ(r->stats().trailing_bytes, 11U);

    // An appended zero-length block.
    std::string zero_block = valid + std::string(16, '\0');
    writeFileBytes(path, zero_block);
    EXPECT_EQ(env::TraceReader::open(path).error().code,
              env::TraceErrorCode::ZeroLengthBlock);
    r = env::TraceReader::open(path, skip);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->size(), 64U);
    EXPECT_EQ(r->stats().blocks_dropped, 1U);

    // A truncated final block (recoverable mid-file damage).
    writeFileBytes(path, truncatedBytes(valid));
    EXPECT_EQ(env::TraceReader::open(path).error().code,
              env::TraceErrorCode::Truncated);
    r = env::TraceReader::open(path, skip);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->size(), 16U);
    EXPECT_TRUE(r->stats().count_mismatch);
}

TEST(TraceRecovery, NothingDecodableIsEmptyTraceInEveryMode)
{
    // Every block CRC broken: recovery has nothing left to serve.
    std::string bytes = validBytes();
    for (std::size_t b = 0; b < 4; ++b)
        bytes[64 + b * kBlockBytes + 16] ^= char(0x01);
    const std::string path = tempPath("trace_all_bad.ctrace");
    writeFileBytes(path, bytes);
    for (const env::RecoveryMode mode :
         {env::RecoveryMode::Clamp, env::RecoveryMode::Skip}) {
        env::TraceReadOptions options;
        options.mode = mode;
        const util::Expected<env::TraceReader, env::TraceError> r =
            env::TraceReader::open(path, options);
        ASSERT_FALSE(r.ok()) << env::recoveryModeName(mode);
        EXPECT_EQ(r.error().code, env::TraceErrorCode::EmptyTrace);
    }
}

TEST(TraceTelemetry, CorruptionIsCountedAndTraced)
{
    if (!telemetry::kEnabled)
        GTEST_SKIP() << "telemetry compiled out";
    const std::string path = tempPath("trace_telemetry.ctrace");
    writeFileBytes(path, crcFlipBytes(validBytes()));

    telemetry::Telemetry sink;
    env::TraceReadOptions options;
    options.mode = env::RecoveryMode::Skip;
    options.telemetry = &sink;
    const util::Expected<env::TraceReader, env::TraceError> r =
        env::TraceReader::open(path, options);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(sink.registry()
                  .counter(telemetry::names::kTraceCorruption)
                  .value(),
              1U);
    const std::vector<telemetry::TraceEvent> events =
        sink.trace().events();
    ASSERT_EQ(events.size(), 1U);
    EXPECT_EQ(events[0].kind, telemetry::EventKind::TraceCorruption);
    EXPECT_EQ(sink.trace().label(events[0].name_id),
              "block_crc_mismatch");
    EXPECT_EQ(events[0].value, 1.0F); // Block index.
    EXPECT_TRUE(events[0].flag);      // Recovered, not fatal.

    // Strict mode still telemeters the failure it surfaces.
    telemetry::Telemetry strict_sink;
    env::TraceReadOptions strict;
    strict.telemetry = &strict_sink;
    ASSERT_FALSE(env::TraceReader::open(path, strict).ok());
    const std::vector<telemetry::TraceEvent> strict_events =
        strict_sink.trace().events();
    ASSERT_EQ(strict_events.size(), 1U);
    EXPECT_FALSE(strict_events[0].flag);
}

TEST(TraceDownsample, MeansBinsAndKeepsFirstTimestamp)
{
    const env::TraceReader reader =
        env::TraceReader::fromData(fixtureSeries());
    const env::TraceData down = env::downsample(reader, 4);
    ASSERT_EQ(down.size(), 16U);
    EXPECT_EQ(down.sample_rate.value(), 2.0);
    const env::TraceData src = fixtureSeries();
    for (std::size_t b = 0; b < down.size(); ++b) {
        EXPECT_EQ(down.time_s[b], src.time_s[4 * b]);
        double current = 0.0;
        for (std::size_t k = 0; k < 4; ++k)
            current += src.current_a[4 * b + k];
        EXPECT_DOUBLE_EQ(down.current_a[b], current / 4.0);
        // The voltage pattern has period 4, so each bin means to the
        // same value.
        EXPECT_DOUBLE_EQ(down.voltage_v[b], (3.0 * 4 + 0.25 * 6) / 4.0);
    }

    // A factor that does not divide the length averages the tail.
    const env::TraceData tail = env::downsample(reader, 60);
    ASSERT_EQ(tail.size(), 2U);
    EXPECT_EQ(tail.time_s[1], src.time_s[60]);
    double mean = 0.0;
    for (std::size_t i = 60; i < 64; ++i)
        mean += src.current_a[i];
    EXPECT_DOUBLE_EQ(tail.current_a[1], mean / 4.0);
}

TEST(TraceFixtures, CheckedInCorpusMatchesGenerator)
{
    const std::string valid = validBytes();
    for (const Fixture &fixture : kFixtures) {
        const std::string path = tracesDir() + "/" + fixture.name;
        EXPECT_EQ(readFileBytes(path), fixture.make(valid))
            << fixture.name
            << " drifted from its generator; regenerate with "
               "CULPEO_TRACE_FIXTURE_OUT";
    }
}

TEST(TraceFixtures, CorpusDecodesToItsDeclaredTaxonomy)
{
    struct Expect
    {
        const char *name;
        bool strict_ok;
        env::TraceErrorCode code; // When !strict_ok.
        std::size_t skip_size;    // Survivors under Skip.
    };
    const Expect expects[] = {
        {"valid.ctrace", true, env::TraceErrorCode::Io, 64},
        {"truncated.ctrace", false, env::TraceErrorCode::Truncated, 16},
        {"crc_flip.ctrace", false, env::TraceErrorCode::BlockCrcMismatch,
         48},
        {"nan_sample.ctrace", false, env::TraceErrorCode::NonFiniteSample,
         63},
        {"nonmono.ctrace", false, env::TraceErrorCode::NonMonotonicTime,
         63},
    };
    for (const Expect &e : expects) {
        const std::string path = tracesDir() + "/" + e.name;
        const util::Expected<env::TraceReader, env::TraceError> strict =
            env::TraceReader::open(path);
        ASSERT_EQ(strict.ok(), e.strict_ok) << e.name;
        if (!e.strict_ok) {
            EXPECT_EQ(strict.error().code, e.code) << e.name;
        }
        env::TraceReadOptions skip;
        skip.mode = env::RecoveryMode::Skip;
        const util::Expected<env::TraceReader, env::TraceError> r =
            env::TraceReader::open(path, skip);
        ASSERT_TRUE(r.ok()) << e.name << ": " << r.error().message();
        EXPECT_EQ(r->size(), e.skip_size) << e.name;
        EXPECT_EQ(r->stats().corrupted(), !e.strict_ok) << e.name;
    }
}

/**
 * Not a check: rewrites the corpus when CULPEO_TRACE_FIXTURE_OUT names
 * a directory. Run once after changing the format or the generator,
 * then commit the bytes.
 */
TEST(TraceFixtures, RegenerateWhenRequested)
{
    const char *out = std::getenv("CULPEO_TRACE_FIXTURE_OUT");
    if (out == nullptr || *out == '\0')
        GTEST_SKIP() << "set CULPEO_TRACE_FIXTURE_OUT to regenerate";
    const std::string valid = validBytes();
    for (const Fixture &fixture : kFixtures)
        writeFileBytes(std::string(out) + "/" + fixture.name,
                       fixture.make(valid));
}

} // namespace
