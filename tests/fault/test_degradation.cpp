/**
 * @file
 * Unit tests for the continuous degradation models: the pure time-domain
 * math, the injector's composition of drift over stepped aging, and the
 * randomPlan drift knobs (default off, bounded when enabled).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fault/degradation.hpp"
#include "fault/injector.hpp"
#include "sim/power_system.hpp"
#include "telemetry/telemetry.hpp"
#include "util/random.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using fault::DegradationModel;
using fault::DriftShape;
using fault::FaultInjector;
using fault::FaultKnobs;
using fault::FaultPlan;

TEST(DegradationModel, DefaultIsInactive)
{
    const DegradationModel model;
    EXPECT_FALSE(model.active());
    EXPECT_DOUBLE_EQ(model.capacitanceFractionAt(Seconds(100.0)), 1.0);
    EXPECT_DOUBLE_EQ(model.esrMultiplierAt(Seconds(100.0)), 1.0);
    EXPECT_DOUBLE_EQ(model.extraLeakageAt(Seconds(100.0)).value(), 0.0);
}

TEST(DegradationModel, AnyPerturbationActivates)
{
    DegradationModel esr;
    esr.esr_multiplier_end = 1.1;
    EXPECT_TRUE(esr.active());

    DegradationModel cap;
    cap.capacitance_fraction_end = 0.9;
    EXPECT_TRUE(cap.active());

    DegradationModel leak;
    leak.leakage_growth = Amps(1e-6);
    EXPECT_TRUE(leak.active());
}

TEST(DegradationModel, LinearRampReachesEndAndHolds)
{
    DegradationModel model;
    model.shape = DriftShape::Linear;
    model.onset = Seconds(10.0);
    model.ramp = Seconds(100.0);
    model.capacitance_fraction_end = 0.8;
    model.esr_multiplier_end = 2.0;
    model.leakage_growth = Amps(100e-6);

    // Pristine before the onset.
    EXPECT_DOUBLE_EQ(model.progressAt(Seconds(0.0)), 0.0);
    EXPECT_DOUBLE_EQ(model.progressAt(Seconds(10.0)), 0.0);
    EXPECT_DOUBLE_EQ(model.capacitanceFractionAt(Seconds(5.0)), 1.0);
    EXPECT_DOUBLE_EQ(model.esrMultiplierAt(Seconds(5.0)), 1.0);

    // Halfway through the ramp: values lerp halfway to their ends.
    EXPECT_NEAR(model.progressAt(Seconds(60.0)), 0.5, 1e-12);
    EXPECT_NEAR(model.capacitanceFractionAt(Seconds(60.0)), 0.9, 1e-12);
    EXPECT_NEAR(model.esrMultiplierAt(Seconds(60.0)), 1.5, 1e-12);
    EXPECT_NEAR(model.extraLeakageAt(Seconds(60.0)).value(), 50e-6,
                1e-15);

    // End of ramp and beyond: fully degraded, held.
    EXPECT_DOUBLE_EQ(model.progressAt(Seconds(110.0)), 1.0);
    EXPECT_DOUBLE_EQ(model.progressAt(Seconds(500.0)), 1.0);
    EXPECT_DOUBLE_EQ(model.capacitanceFractionAt(Seconds(500.0)), 0.8);
    EXPECT_DOUBLE_EQ(model.esrMultiplierAt(Seconds(500.0)), 2.0);
}

TEST(DegradationModel, ExponentialApproachesAsymptotically)
{
    DegradationModel model;
    model.shape = DriftShape::Exponential;
    model.onset = Seconds(0.0);
    model.ramp = Seconds(50.0); // Time constant.
    model.esr_multiplier_end = 3.0;

    EXPECT_DOUBLE_EQ(model.progressAt(Seconds(0.0)), 0.0);
    // One time constant: 1 - 1/e.
    EXPECT_NEAR(model.progressAt(Seconds(50.0)), 1.0 - std::exp(-1.0),
                1e-12);
    // Monotone, always strictly below full progress.
    double prev = 0.0;
    for (double t = 10.0; t <= 400.0; t += 10.0) {
        const double p = model.progressAt(Seconds(t));
        EXPECT_GT(p, prev);
        EXPECT_LT(p, 1.0);
        prev = p;
    }
    // Five time constants: essentially done.
    EXPECT_NEAR(model.progressAt(Seconds(250.0)), 1.0, 1e-2);
}

TEST(FaultInjectorDrift, ContinuousDriftAgesTheCapacitor)
{
    sim::PowerSystem system(sim::capybaraConfig());
    system.setBufferVoltage(Volts(2.4));
    system.forceOutputEnabled(true);

    FaultPlan plan;
    DegradationModel drift;
    drift.shape = DriftShape::Linear;
    drift.onset = Seconds(0.0);
    drift.ramp = Seconds(1.0);
    drift.capacitance_fraction_end = 0.8;
    drift.esr_multiplier_end = 2.0;
    plan.degradation = drift;
    FaultInjector injector(plan);
    system.setFaultHooks(&injector);

    for (int i = 0; i < 500; ++i)
        system.step(Seconds(1e-3), Amps(0.0));
    // Mid-ramp: roughly halfway degraded.
    EXPECT_NEAR(system.capacitor().config().capacitance_fraction, 0.9,
                5e-3);
    EXPECT_NEAR(system.capacitor().config().esr_multiplier, 1.5, 5e-2);

    for (int i = 500; i < 1100; ++i)
        system.step(Seconds(1e-3), Amps(0.0));
    // Past the ramp: fully degraded (within the re-apply resolution).
    EXPECT_NEAR(system.capacitor().config().capacitance_fraction, 0.8,
                1e-3);
    EXPECT_NEAR(system.capacitor().config().esr_multiplier, 2.0, 1e-2);
}

TEST(FaultInjectorDrift, DriftComposesOverAgingSteps)
{
    FaultPlan plan;
    plan.aging_steps = {{Seconds(0.0), 0.9, 1.2}};
    DegradationModel drift;
    drift.shape = DriftShape::Linear;
    drift.onset = Seconds(0.0);
    drift.ramp = Seconds(1.0);
    drift.capacitance_fraction_end = 0.8;
    drift.esr_multiplier_end = 2.0;
    plan.degradation = drift;
    FaultInjector injector(plan);

    // Past the ramp the applied values are the product of the stepped
    // aging and the fully progressed drift.
    const sim::FaultActions actions =
        injector.onStep(Seconds(2.0), Seconds(1e-3));
    ASSERT_TRUE(actions.apply_aging);
    EXPECT_NEAR(actions.capacitance_fraction, 0.9 * 0.8, 1e-12);
    EXPECT_NEAR(actions.esr_multiplier, 1.2 * 2.0, 1e-12);
}

TEST(FaultInjectorDrift, LeakageGrowthFeedsExtraLeakage)
{
    FaultPlan plan;
    DegradationModel drift;
    drift.shape = DriftShape::Linear;
    drift.onset = Seconds(0.0);
    drift.ramp = Seconds(1.0);
    drift.leakage_growth = Amps(100e-6);
    plan.degradation = drift;
    FaultInjector injector(plan);

    EXPECT_NEAR(
        injector.onStep(Seconds(0.5), Seconds(1e-3)).extra_leakage.value(),
        50e-6, 1e-12);
    EXPECT_NEAR(
        injector.onStep(Seconds(2.0), Seconds(1e-3)).extra_leakage.value(),
        100e-6, 1e-12);
}

TEST(FaultInjectorDrift, SubResolutionChangesDoNotReapplyAging)
{
    FaultPlan plan;
    DegradationModel drift;
    drift.shape = DriftShape::Linear;
    drift.onset = Seconds(0.0);
    drift.ramp = Seconds(1000.0); // Glacial: ~1e-6 esr change per ms.
    drift.esr_multiplier_end = 2.0;
    plan.degradation = drift;
    FaultInjector injector(plan);

    unsigned applied = 0;
    for (int i = 0; i < 100; ++i) {
        if (injector.onStep(Seconds(i * 1e-3), Seconds(1e-3)).apply_aging)
            ++applied;
    }
    EXPECT_EQ(applied, 0u) << "sub-resolution drift must not churn "
                              "applyAging every tick";
}

TEST(FaultInjectorDrift, ResetRestoresThePristinePart)
{
    FaultPlan plan;
    DegradationModel drift;
    drift.shape = DriftShape::Linear;
    drift.onset = Seconds(0.0);
    drift.ramp = Seconds(1.0);
    drift.esr_multiplier_end = 2.0;
    plan.degradation = drift;
    FaultInjector injector(plan);

    ASSERT_TRUE(injector.onStep(Seconds(2.0), Seconds(1e-3)).apply_aging);
    injector.reset();
    // At t = 0 progress is 0 and the applied state is back to pristine,
    // so nothing needs re-applying.
    EXPECT_FALSE(injector.onStep(Seconds(0.0), Seconds(1e-3)).apply_aging);
    // Replaying past the ramp re-applies the same degradation.
    const sim::FaultActions replay =
        injector.onStep(Seconds(2.0), Seconds(1e-3));
    ASSERT_TRUE(replay.apply_aging);
    EXPECT_NEAR(replay.esr_multiplier, 2.0, 1e-12);
}

TEST(FaultInjectorDrift, DegradationNotesTelemetryOnce)
{
    if (!telemetry::kEnabled)
        GTEST_SKIP() << "built with CULPEO_TELEMETRY=OFF";

    FaultPlan plan;
    DegradationModel drift;
    drift.shape = DriftShape::Linear;
    drift.onset = Seconds(0.5);
    drift.ramp = Seconds(1.0);
    drift.esr_multiplier_end = 2.0;
    plan.degradation = drift;
    FaultInjector injector(plan);
    telemetry::Telemetry sink;
    injector.onTelemetry(&sink);

    for (int i = 0; i < 2000; ++i)
        injector.onStep(Seconds(i * 1e-3), Seconds(1e-3));
    const telemetry::Counter *injected =
        sink.registry().findCounter(telemetry::names::kFaultInjected);
    ASSERT_NE(injected, nullptr);
    EXPECT_EQ(injected->value(), 1u)
        << "continuous drift must note itself once at onset, not per tick";
    injector.onTelemetry(nullptr);
}

TEST(RandomPlanDrift, DefaultKnobsNeverCarryDrift)
{
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        util::Rng rng(seed);
        const FaultPlan plan = fault::randomPlan(rng, Seconds(8.0));
        EXPECT_FALSE(plan.degradation.has_value())
            << "seed " << seed
            << ": drift must stay opt-in (seed replays depend on the "
               "historical draw sequence)";
    }
}

TEST(RandomPlanDrift, EnabledKnobsProduceBoundedModels)
{
    FaultKnobs knobs;
    knobs.drift_probability = 1.0;
    const Seconds horizon(8.0);
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        util::Rng rng(seed);
        const FaultPlan plan = fault::randomPlan(rng, horizon, knobs);
        ASSERT_TRUE(plan.degradation.has_value()) << "seed " << seed;
        const fault::DegradationModel &drift = *plan.degradation;
        EXPECT_GE(drift.onset.value(), 0.0);
        EXPECT_LE(drift.onset.value(), 0.5 * horizon.value());
        EXPECT_GE(drift.ramp.value(), 0.1 * horizon.value());
        EXPECT_LE(drift.ramp.value(), horizon.value());
        EXPECT_GE(drift.capacitance_fraction_end,
                  knobs.min_drift_capacitance_fraction);
        EXPECT_LE(drift.capacitance_fraction_end, 1.0);
        EXPECT_GE(drift.esr_multiplier_end, 1.0);
        EXPECT_LE(drift.esr_multiplier_end,
                  knobs.max_drift_esr_multiplier);
        EXPECT_GE(drift.leakage_growth.value(), 0.0);
        EXPECT_LE(drift.leakage_growth.value(),
                  knobs.max_drift_leakage.value());
    }
}

TEST(RandomPlanDrift, DriftPlansAreSeedDeterministic)
{
    FaultKnobs knobs;
    knobs.drift_probability = 0.5;
    for (std::uint64_t seed : {3ULL, 17ULL, 99ULL}) {
        util::Rng a(seed);
        util::Rng b(seed);
        const FaultPlan pa = fault::randomPlan(a, Seconds(8.0), knobs);
        const FaultPlan pb = fault::randomPlan(b, Seconds(8.0), knobs);
        EXPECT_EQ(pa.summary(), pb.summary());
        EXPECT_EQ(pa.degradation.has_value(), pb.degradation.has_value());
        if (pa.degradation.has_value()) {
            EXPECT_DOUBLE_EQ(pa.degradation->onset.value(),
                             pb.degradation->onset.value());
            EXPECT_DOUBLE_EQ(pa.degradation->esr_multiplier_end,
                             pb.degradation->esr_multiplier_end);
        }
    }
}

} // namespace
