/**
 * @file
 * Unit tests for the deterministic fault injector: plan generation is
 * seed-reproducible and bounded by its knobs, and replaying a plan
 * through a PowerSystem produces exactly the scheduled disturbances.
 */

#include <gtest/gtest.h>

#include "fault/injector.hpp"
#include "fault/scenario.hpp"
#include "sim/power_system.hpp"
#include "util/random.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using fault::FaultInjector;
using fault::FaultKnobs;
using fault::FaultPlan;

FaultPlan
planFromSeed(std::uint64_t seed, double horizon = 8.0,
             const FaultKnobs &knobs = {})
{
    util::Rng rng(seed);
    return fault::randomPlan(rng, Seconds(horizon), knobs);
}

TEST(RandomPlan, SameSeedSamePlan)
{
    for (std::uint64_t seed : {1ULL, 42ULL, 987654321ULL}) {
        const FaultPlan a = planFromSeed(seed);
        const FaultPlan b = planFromSeed(seed);
        EXPECT_EQ(a.summary(), b.summary());
        ASSERT_EQ(a.harvest_trace.size(), b.harvest_trace.size());
        for (std::size_t i = 0; i < a.harvest_trace.size(); ++i) {
            EXPECT_DOUBLE_EQ(a.harvest_trace[i].time.value(),
                             b.harvest_trace[i].time.value());
            EXPECT_DOUBLE_EQ(a.harvest_trace[i].scale,
                             b.harvest_trace[i].scale);
        }
        ASSERT_EQ(a.dropouts.size(), b.dropouts.size());
        for (std::size_t i = 0; i < a.dropouts.size(); ++i) {
            EXPECT_DOUBLE_EQ(a.dropouts[i].start.value(),
                             b.dropouts[i].start.value());
            EXPECT_DOUBLE_EQ(a.dropouts[i].scale, b.dropouts[i].scale);
        }
        EXPECT_DOUBLE_EQ(a.adc.offset.value(), b.adc.offset.value());
        EXPECT_DOUBLE_EQ(a.adc.noise_stddev.value(),
                         b.adc.noise_stddev.value());
    }
}

TEST(RandomPlan, RespectsKnobBounds)
{
    const FaultKnobs knobs;
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        const FaultPlan plan = planFromSeed(seed, 8.0, knobs);
        EXPECT_LE(plan.harvest_trace.size(), knobs.max_harvest_points);
        EXPECT_LE(plan.dropouts.size(), knobs.max_dropouts);
        EXPECT_LE(plan.leakage_spikes.size(), knobs.max_leakage_spikes);
        EXPECT_LE(plan.aging_steps.size(), knobs.max_aging_steps);
        EXPECT_LE(plan.brownouts.size(), knobs.max_brownouts);
        for (const auto &point : plan.harvest_trace) {
            EXPECT_GE(point.scale, knobs.min_harvest_scale);
            EXPECT_LE(point.scale, 1.0);
            EXPECT_GE(point.time.value(), 0.0);
            EXPECT_LE(point.time.value(), 8.0);
        }
        for (const auto &window : plan.dropouts) {
            EXPECT_GE(window.end.value(), window.start.value());
            EXPECT_LE(window.end.value(), 8.0);
            EXPECT_LE(window.end.value() - window.start.value(),
                      knobs.max_dropout_length.value() + 1e-12);
        }
        for (const auto &spike : plan.leakage_spikes)
            EXPECT_LE(spike.extra.value(), knobs.max_leakage.value());
        for (const auto &step : plan.aging_steps) {
            EXPECT_GE(step.capacitance_fraction,
                      knobs.min_capacitance_fraction);
            EXPECT_LE(step.capacitance_fraction, 1.0);
            EXPECT_GE(step.esr_multiplier, 1.0);
            EXPECT_LE(step.esr_multiplier, knobs.max_esr_multiplier);
        }
        EXPECT_LE(std::abs(plan.adc.offset.value()),
                  knobs.max_adc_offset.value());
        EXPECT_LE(plan.adc.noise_stddev.value(),
                  knobs.max_adc_noise.value());
    }
}

TEST(FaultInjector, EmptyPlanIsIdentity)
{
    FaultInjector injector(FaultPlan{});
    const sim::FaultActions actions =
        injector.onStep(Seconds(1.0), Seconds(1e-3));
    EXPECT_DOUBLE_EQ(actions.harvest_scale, 1.0);
    EXPECT_DOUBLE_EQ(actions.extra_leakage.value(), 0.0);
    EXPECT_FALSE(actions.force_brownout);
    EXPECT_FALSE(actions.apply_aging);
    EXPECT_DOUBLE_EQ(injector.perturbReading(Volts(2.3)).value(), 2.3);
}

TEST(FaultInjector, HarvestTraceInterpolatesAndClamps)
{
    FaultPlan plan;
    plan.harvest_trace = {{Seconds(1.0), 1.0}, {Seconds(3.0), 0.5}};
    FaultInjector injector(plan);
    const Seconds dt(1e-3);
    // Clamped before the first point and after the last.
    EXPECT_DOUBLE_EQ(injector.onStep(Seconds(0.0), dt).harvest_scale,
                     1.0);
    EXPECT_DOUBLE_EQ(injector.onStep(Seconds(5.0), dt).harvest_scale,
                     0.5);
    // Linear in between.
    EXPECT_NEAR(injector.onStep(Seconds(2.0), dt).harvest_scale, 0.75,
                1e-12);
}

TEST(FaultInjector, DropoutWindowScalesHarvest)
{
    FaultPlan plan;
    plan.dropouts = {{Seconds(1.0), Seconds(2.0), 0.0}};
    FaultInjector injector(plan);
    const Seconds dt(1e-3);
    EXPECT_DOUBLE_EQ(injector.onStep(Seconds(0.5), dt).harvest_scale,
                     1.0);
    EXPECT_DOUBLE_EQ(injector.onStep(Seconds(1.5), dt).harvest_scale,
                     0.0);
    EXPECT_DOUBLE_EQ(injector.onStep(Seconds(2.5), dt).harvest_scale,
                     1.0);
}

TEST(FaultInjector, OverlappingLeakageSpikesSum)
{
    FaultPlan plan;
    plan.leakage_spikes = {
        {Seconds(0.0), Seconds(2.0), Amps(100e-6)},
        {Seconds(1.0), Seconds(3.0), Amps(50e-6)},
    };
    FaultInjector injector(plan);
    const Seconds dt(1e-3);
    EXPECT_NEAR(injector.onStep(Seconds(0.5), dt).extra_leakage.value(),
                100e-6, 1e-12);
    EXPECT_NEAR(injector.onStep(Seconds(1.5), dt).extra_leakage.value(),
                150e-6, 1e-12);
    EXPECT_NEAR(injector.onStep(Seconds(2.5), dt).extra_leakage.value(),
                50e-6, 1e-12);
}

TEST(FaultInjector, OneShotEventsFireOnceAndResetRewinds)
{
    FaultPlan plan;
    plan.aging_steps = {{Seconds(1.0), 0.9, 1.2}};
    plan.brownouts = {{Seconds(2.0)}};
    FaultInjector injector(plan);
    const Seconds dt(1e-3);

    EXPECT_FALSE(injector.onStep(Seconds(0.5), dt).apply_aging);
    const sim::FaultActions at_aging =
        injector.onStep(Seconds(1.5), dt);
    EXPECT_TRUE(at_aging.apply_aging);
    EXPECT_DOUBLE_EQ(at_aging.capacitance_fraction, 0.9);
    EXPECT_DOUBLE_EQ(at_aging.esr_multiplier, 1.2);
    // Already fired: subsequent steps do not re-apply it.
    EXPECT_FALSE(injector.onStep(Seconds(1.6), dt).apply_aging);

    EXPECT_TRUE(injector.onStep(Seconds(2.5), dt).force_brownout);
    EXPECT_FALSE(injector.onStep(Seconds(2.6), dt).force_brownout);
    EXPECT_EQ(injector.firedBrownouts(), 1u);
    EXPECT_EQ(injector.appliedAgingSteps(), 1u);

    injector.reset();
    EXPECT_EQ(injector.firedBrownouts(), 0u);
    EXPECT_TRUE(injector.onStep(Seconds(1.5), dt).apply_aging);
    EXPECT_TRUE(injector.onStep(Seconds(2.5), dt).force_brownout);
}

TEST(FaultInjector, AdcModelIsDeterministicPerSeed)
{
    FaultPlan plan;
    plan.adc.offset = Volts(3e-3);
    plan.adc.noise_stddev = Volts(1e-3);

    FaultInjector a(plan, 77);
    FaultInjector b(plan, 77);
    FaultInjector c(plan, 78);
    bool any_differs = false;
    for (int i = 0; i < 32; ++i) {
        const double ra = a.perturbReading(Volts(2.3)).value();
        const double rb = b.perturbReading(Volts(2.3)).value();
        const double rc = c.perturbReading(Volts(2.3)).value();
        EXPECT_DOUBLE_EQ(ra, rb);
        any_differs = any_differs || ra != rc;
        // Gaussian tails: 32 draws at sigma = 1 mV stay within 6 sigma
        // of the offset value with overwhelming probability.
        EXPECT_NEAR(ra, 2.303, 6e-3);
    }
    EXPECT_TRUE(any_differs) << "different seeds gave identical noise";

    // reset() replays the identical noise stream.
    a.reset();
    FaultInjector fresh(plan, 77);
    for (int i = 0; i < 8; ++i) {
        EXPECT_DOUBLE_EQ(a.perturbReading(Volts(2.3)).value(),
                         fresh.perturbReading(Volts(2.3)).value());
    }
}

TEST(FaultInjector, OffsetOnlyReadsShiftExactly)
{
    FaultPlan plan;
    plan.adc.offset = Volts(-4e-3);
    FaultInjector injector(plan);
    EXPECT_NEAR(injector.perturbReading(Volts(2.5)).value(), 2.496,
                1e-12);
    // Readings clamp at zero rather than going negative.
    EXPECT_DOUBLE_EQ(injector.perturbReading(Volts(1e-3)).value(), 0.0);
}

// --- Replay through the simulator ---

TEST(FaultInjectorSim, ForcedBrownoutPowersFailsAndIsFlagged)
{
    sim::PowerSystem system(sim::capybaraConfig());
    system.setBufferVoltage(Volts(2.5));
    system.forceOutputEnabled(true);

    FaultPlan plan;
    plan.brownouts = {{Seconds(5e-3)}};
    FaultInjector injector(plan);
    system.setFaultHooks(&injector);

    const unsigned before = system.monitor().powerFailures();
    bool saw_forced = false;
    for (int i = 0; i < 20; ++i) {
        const sim::StepResult step =
            system.step(Seconds(1e-3), Amps(5e-3));
        if (step.forced_brownout) {
            saw_forced = true;
            EXPECT_TRUE(step.power_failed);
        }
    }
    EXPECT_TRUE(saw_forced);
    EXPECT_EQ(system.monitor().powerFailures(), before + 1);
    EXPECT_EQ(injector.firedBrownouts(), 1u);
}

TEST(FaultInjectorSim, ExtraLeakageDischargesFaster)
{
    auto run = [](Amps leak) {
        sim::PowerSystem system(sim::capybaraConfig());
        system.setBufferVoltage(Volts(2.4));
        system.forceOutputEnabled(true);
        FaultPlan plan;
        if (leak.value() > 0.0)
            plan.leakage_spikes = {
                {Seconds(0.0), Seconds(10.0), leak}};
        FaultInjector injector(plan);
        system.setFaultHooks(&injector);
        for (int i = 0; i < 1000; ++i)
            system.step(Seconds(1e-3), Amps(0.0));
        return system.restingVoltage().value();
    };
    EXPECT_LT(run(Amps(10e-3)), run(Amps(0.0)) - 1e-4);
}

TEST(FaultInjectorSim, HarvestDropoutStopsCharging)
{
    auto run = [](double scale) {
        sim::PowerSystem system(sim::capybaraConfig());
        sim::ConstantHarvester harvester(Watts(10e-3));
        system.setHarvester(&harvester);
        system.setBufferVoltage(Volts(2.0));
        system.forceOutputEnabled(true);
        FaultPlan plan;
        plan.dropouts = {{Seconds(0.0), Seconds(10.0), scale}};
        FaultInjector injector(plan);
        system.setFaultHooks(&injector);
        for (int i = 0; i < 1000; ++i)
            system.step(Seconds(1e-3), Amps(0.0));
        return system.restingVoltage().value();
    };
    const double full = run(1.0);
    const double none = run(0.0);
    EXPECT_GT(full, 2.0);            // Charged up.
    EXPECT_LE(none, 2.0 + 1e-9);     // No incoming energy.
    EXPECT_GT(run(0.5), none);
    EXPECT_LT(run(0.5), full);
}

TEST(FaultInjectorSim, AgingStepDegradesTheCapacitorInPlace)
{
    sim::PowerSystem system(sim::capybaraConfig());
    system.setBufferVoltage(Volts(2.4));
    system.forceOutputEnabled(true);

    FaultPlan plan;
    plan.aging_steps = {{Seconds(1e-3), 0.9, 1.3}};
    FaultInjector injector(plan);
    system.setFaultHooks(&injector);

    const double voltage_before = system.restingVoltage().value();
    for (int i = 0; i < 5; ++i)
        system.step(Seconds(1e-3), Amps(0.0));
    EXPECT_EQ(injector.appliedAgingSteps(), 1u);
    EXPECT_DOUBLE_EQ(system.config().capacitor.capacitance_fraction, 1.0)
        << "config snapshot must keep the as-built description";
    EXPECT_DOUBLE_EQ(system.capacitor().config().capacitance_fraction,
                     0.9);
    EXPECT_DOUBLE_EQ(system.capacitor().config().esr_multiplier, 1.3);
    // Aging rescales charge capacity, not stored state: the terminal
    // voltage stays continuous across the step.
    EXPECT_NEAR(system.restingVoltage().value(), voltage_before, 5e-3);
}

TEST(Scenario, TaskScenariosAreDeterministicAndDistinct)
{
    const fault::TaskScenario a = fault::randomTaskScenario(7);
    const fault::TaskScenario b = fault::randomTaskScenario(7);
    const fault::TaskScenario c = fault::randomTaskScenario(8);
    EXPECT_DOUBLE_EQ(a.config.capacitor.capacitance.value(),
                     b.config.capacitor.capacitance.value());
    EXPECT_EQ(a.profile.segments().size(), b.profile.segments().size());
    EXPECT_NE(a.config.capacitor.capacitance.value(),
              c.config.capacitor.capacitance.value());
}

TEST(Scenario, AppScenariosAreDeterministic)
{
    const fault::AppScenario a = fault::randomAppScenario(11);
    const fault::AppScenario b = fault::randomAppScenario(11);
    EXPECT_EQ(a.app.events.size(), b.app.events.size());
    EXPECT_DOUBLE_EQ(a.duration.value(), b.duration.value());
    EXPECT_EQ(a.plan.summary(), b.plan.summary());
    ASSERT_FALSE(a.app.events.empty());
    EXPECT_EQ(a.app.events[0].chain.size(),
              b.app.events[0].chain.size());
}

} // namespace
