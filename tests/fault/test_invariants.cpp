/**
 * @file
 * Unit tests for the invariant monitor and the standalone persistence /
 * composition checks, driven with synthetic step streams so every
 * branch of the premise logic is exercised deterministically.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/api.hpp"
#include "core/profiler.hpp"
#include "fault/invariants.hpp"
#include "harness/profiling.hpp"
#include "load/library.hpp"
#include "util/random.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;
using fault::InvariantMonitor;

sim::StepResult
stepAt(double t, double vterm, bool power_failed = false,
       bool forced = false, bool collapsed = false)
{
    sim::StepResult step;
    step.time = Seconds(t);
    step.terminal = Volts(vterm);
    step.power_failed = power_failed;
    step.forced_brownout = forced;
    step.collapsed = collapsed;
    return step;
}

TEST(InvariantMonitor, CleanCommittedRunHasNoViolations)
{
    InvariantMonitor monitor(Volts(1.6));
    monitor.onCommit("task", Volts(2.2), Volts(2.1));
    monitor.onStep(stepAt(0.001, 2.0));
    monitor.onStep(stepAt(0.002, 1.9));
    monitor.onCommitEnd(true);
    EXPECT_TRUE(monitor.clean());
    EXPECT_EQ(monitor.commits(), 1u);
    EXPECT_EQ(monitor.exemptedReboots(), 0u);
    EXPECT_EQ(monitor.noiseAdmissions(), 0u);
}

TEST(InvariantMonitor, BrownOutDuringValidCommitIsAViolation)
{
    InvariantMonitor monitor(Volts(1.6));
    monitor.onCommit("task", Volts(2.2), Volts(2.1));
    monitor.onStep(stepAt(0.001, 1.55, /*power_failed=*/true));
    EXPECT_FALSE(monitor.clean());
    ASSERT_EQ(monitor.violations().size(), 1u);
    EXPECT_EQ(monitor.violations()[0].invariant, "vterm>=voff");
    EXPECT_DOUBLE_EQ(monitor.violations()[0].time.value(), 0.001);
    // The report names the task and carries the replay seed.
    const std::string report = monitor.report(1234);
    EXPECT_NE(report.find("CULPEO_FUZZ_SEED=1234"), std::string::npos);
    EXPECT_NE(report.find("task"), std::string::npos);
    EXPECT_NE(report.find("vterm>=voff"), std::string::npos);
}

TEST(InvariantMonitor, BoosterCollapseDuringCommitIsAViolation)
{
    InvariantMonitor monitor(Volts(1.6));
    monitor.onCommit("task", Volts(2.2), Volts(2.1));
    monitor.onStep(stepAt(0.001, 1.8, false, false, /*collapsed=*/true));
    ASSERT_EQ(monitor.violations().size(), 1u);
    EXPECT_EQ(monitor.violations()[0].invariant, "no-collapse");
}

TEST(InvariantMonitor, InjectedRebootIsExemptNotAViolation)
{
    InvariantMonitor monitor(Volts(1.6));
    monitor.onCommit("task", Volts(2.2), Volts(2.1));
    monitor.onStep(
        stepAt(0.001, 2.0, /*power_failed=*/true, /*forced=*/true));
    EXPECT_TRUE(monitor.clean());
    EXPECT_EQ(monitor.exemptedReboots(), 1u);
    // The window ended with the reboot: later electrical failures are
    // outside any commitment.
    monitor.onStep(stepAt(0.002, 1.5, true));
    EXPECT_TRUE(monitor.clean());
}

TEST(InvariantMonitor, NoiseAdmissionVoidsThePremise)
{
    InvariantMonitor monitor(Volts(1.6));
    // ADC error let the scheduler admit below Vsafe: Theorem 1 makes no
    // claim, so a brown-out is tracked but not a violation.
    monitor.onCommit("task", Volts(2.05), Volts(2.1));
    EXPECT_EQ(monitor.noiseAdmissions(), 1u);
    monitor.onStep(stepAt(0.001, 1.55, true));
    EXPECT_TRUE(monitor.clean());
}

TEST(InvariantMonitor, StepsOutsideCommitWindowsAreIgnored)
{
    InvariantMonitor monitor(Volts(1.6));
    monitor.onStep(stepAt(0.001, 1.5, true, false, true));
    monitor.onCommit("task", Volts(2.2), Volts(2.1));
    monitor.onCommitEnd(true);
    monitor.onStep(stepAt(0.002, 1.5, true));
    EXPECT_TRUE(monitor.clean());
    EXPECT_EQ(monitor.commits(), 1u);
}

TEST(InvariantMonitor, AdmissionExactlyAtVsafeKeepsThePremise)
{
    InvariantMonitor monitor(Volts(1.6));
    monitor.onCommit("task", Volts(2.1), Volts(2.1));
    EXPECT_EQ(monitor.noiseAdmissions(), 0u);
    monitor.onStep(stepAt(0.001, 1.55, true));
    EXPECT_FALSE(monitor.clean());
}

// --- Persistence idempotence ---

TEST(PersistenceInvariant, HoldsForImportedAndProfiledTables)
{
    const auto cfg = sim::capybaraConfig();
    core::Culpeo culpeo(core::modelFromConfig(cfg),
                        std::make_unique<core::IsrProfiler>());
    culpeo.importPg(1, Volts(2.1), Volts(0.3));
    const auto outcome = harness::profileTaskFrom(
        cfg, Volts(2.56), culpeo, 2, load::uniform(25.0_mA, 10.0_ms));
    ASSERT_TRUE(outcome.stored);

    // Ids 1 and 2 are populated; 3 exercises the no-result path.
    const auto violation =
        fault::checkPersistenceIdempotence(culpeo, {1, 2, 3});
    EXPECT_FALSE(violation.has_value())
        << (violation.has_value() ? violation->detail : "");
}

TEST(PersistenceInvariant, HoldsOnAnEmptyTable)
{
    core::Culpeo culpeo(core::modelFromConfig(sim::capybaraConfig()),
                        std::make_unique<core::IsrProfiler>());
    EXPECT_FALSE(
        fault::checkPersistenceIdempotence(culpeo, {1, 2}).has_value());
}

TEST(PersistenceInvariant, HoldsAcrossRepeatedRebootCycles)
{
    core::Culpeo culpeo(core::modelFromConfig(sim::capybaraConfig()),
                        std::make_unique<core::IsrProfiler>());
    culpeo.importPg(7, Volts(2.2), Volts(0.25));
    // Simulate a crash-loop: restore from the same snapshot many times.
    const auto image = culpeo.snapshot();
    for (int reboot = 0; reboot < 5; ++reboot) {
        culpeo.restore(image);
        EXPECT_FALSE(
            fault::checkPersistenceIdempotence(culpeo, {7}).has_value());
        EXPECT_EQ(culpeo.snapshot(), image);
    }
}

// --- Composition dominance ---

TEST(CompositionInvariant, HoldsOnRandomRequirementSets)
{
    util::Rng rng(99);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<core::TaskRequirement> tasks;
        const unsigned count = 1 + unsigned(rng.uniformInt(5));
        for (unsigned i = 0; i < count; ++i) {
            core::TaskRequirement req;
            req.name = "t" + std::to_string(i);
            req.v_energy = Volts(rng.uniform(0.0, 0.15));
            req.vdelta = Volts(rng.uniform(0.0, 0.4));
            tasks.push_back(req);
        }
        const auto violation =
            fault::checkCompositionDominance(tasks, Volts(1.6));
        EXPECT_FALSE(violation.has_value())
            << (violation.has_value() ? violation->detail : "")
            << " (trial " << trial << ")";
    }
}

} // namespace
