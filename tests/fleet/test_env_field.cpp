/**
 * @file
 * Property tests for the env:: harvest fields (DESIGN.md §16): the
 * piecewise-constant contract every field owes the analytic stepper
 * (power fixed on [t, constantUntil(pos, t)), boundary strictly past
 * t), pure-function determinism (equal configs produce equal fields,
 * different seeds different skies), and the generators' envelopes
 * (solar bounded by peak and dark at night, kinetic two-leveled at
 * roughly the configured burst rate).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "env/field.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;

env::SolarConfig
testSolar()
{
    env::SolarConfig config;
    config.peak = Watts(5e-3);
    config.day_length = Seconds(120.0);
    config.daylight_fraction = 0.5;
    config.sample_period = Seconds(0.5);
    config.cloud_depth = 0.5;
    config.cell_size = 10.0;
    config.shading_depth = 0.3;
    config.seed = 42;
    return config;
}

env::KineticConfig
testKinetic()
{
    env::KineticConfig config;
    config.baseline = Watts(50e-6);
    config.burst = Watts(5e-3);
    config.sample_period = Seconds(0.25);
    config.burst_probability = 0.3;
    config.cell_size = 5.0;
    config.seed = 99;
    return config;
}

TEST(UniformField, ConstantEverywhereForever)
{
    const env::UniformField field(Watts(2e-3));
    for (double t : {0.0, 17.3, 9999.0}) {
        for (double x : {0.0, -50.0, 1234.5}) {
            EXPECT_EQ(field.powerAt({x, -x}, Seconds(t)).value(), 2e-3);
        }
    }
    EXPECT_TRUE(std::isinf(field.constantUntil({}, Seconds(5.0)).value()));
    ASSERT_TRUE(field.constantPower({1.0, 2.0}).has_value());
    EXPECT_EQ(field.constantPower({1.0, 2.0})->value(), 2e-3);
}

TEST(SolarField, PiecewiseConstantContract)
{
    const env::SolarDiurnalField field(testSolar());
    const env::Position pos{12.0, 33.0};
    double t = 0.0;
    int pieces = 0;
    while (t < 360.0 && pieces < 10000) {
        const double end = field.constantUntil(pos, Seconds(t)).value();
        ASSERT_GT(end, t) << "piece boundary must be strictly past t";
        const double power = field.powerAt(pos, Seconds(t)).value();
        // Constant across the piece: probe the midpoint and just
        // before the boundary.
        const double mid = t + 0.5 * (end - t);
        const double late = t + 0.999 * (end - t);
        EXPECT_EQ(field.powerAt(pos, Seconds(mid)).value(), power);
        EXPECT_EQ(field.powerAt(pos, Seconds(late)).value(), power);
        t = end;
        ++pieces;
    }
    EXPECT_GE(pieces, int(360.0 / testSolar().sample_period.value()) - 1);
}

TEST(SolarField, EnvelopeDayAndNight)
{
    const env::SolarConfig config = testSolar();
    const env::SolarDiurnalField field(config);
    const double day = config.day_length.value();
    const double daylight = day * config.daylight_fraction;
    bool saw_light = false;
    for (double t = 0.0; t < 2.0 * day; t += config.sample_period.value()) {
        for (double x : {0.0, 37.0, 80.0}) {
            const double p = field.powerAt({x, x / 2.0}, Seconds(t)).value();
            EXPECT_GE(p, 0.0);
            EXPECT_LE(p, config.peak.value());
            const double local = std::fmod(t, day);
            if (local >= daylight) {
                EXPECT_EQ(p, 0.0) << "night must be dark at t=" << t;
            }
            if (p > 0.0)
                saw_light = true;
        }
    }
    EXPECT_TRUE(saw_light);
}

TEST(SolarField, DeterministicAndSeedSensitive)
{
    const env::SolarDiurnalField a(testSolar());
    const env::SolarDiurnalField b(testSolar());
    env::SolarConfig other = testSolar();
    other.seed = 43;
    const env::SolarDiurnalField c(other);

    bool seed_differs = false;
    for (double t = 0.0; t < 60.0; t += 0.5) {
        for (double x = 0.0; x < 100.0; x += 12.5) {
            const env::Position pos{x, 100.0 - x};
            EXPECT_EQ(a.powerAt(pos, Seconds(t)).value(),
                      b.powerAt(pos, Seconds(t)).value());
            if (a.powerAt(pos, Seconds(t)).value() !=
                c.powerAt(pos, Seconds(t)).value())
                seed_differs = true;
        }
    }
    EXPECT_TRUE(seed_differs);
}

TEST(KineticField, TwoLevelsAtConfiguredRate)
{
    const env::KineticConfig config = testKinetic();
    const env::KineticBurstField field(config);
    const env::Position pos{3.0, 4.0};
    int bursting = 0;
    const int pieces = 4000;
    for (int i = 0; i < pieces; ++i) {
        const double t = double(i) * config.sample_period.value();
        const double p = field.powerAt(pos, Seconds(t)).value();
        const bool is_burst = p == config.burst.value();
        EXPECT_TRUE(is_burst || p == config.baseline.value())
            << "kinetic power must be baseline or burst, got " << p;
        bursting += is_burst ? 1 : 0;
        EXPECT_GT(field.constantUntil(pos, Seconds(t)).value(), t);
    }
    const double rate = double(bursting) / double(pieces);
    EXPECT_NEAR(rate, config.burst_probability, 0.05);
}

TEST(FieldHarvester, ForwardsTheFieldAtItsPosition)
{
    const env::SolarDiurnalField solar(testSolar());
    const env::Position pos{22.0, 7.0};
    const env::FieldHarvester view(solar, pos);
    EXPECT_TRUE(view.piecewiseConstant());
    EXPECT_FALSE(view.constantPower().has_value());
    for (double t : {0.0, 3.3, 61.7}) {
        EXPECT_EQ(view.powerAt(Seconds(t)).value(),
                  solar.powerAt(pos, Seconds(t)).value());
        EXPECT_EQ(view.constantUntil(Seconds(t)).value(),
                  solar.constantUntil(pos, Seconds(t)).value());
    }

    // A uniform field's view is a constant source: the equilibrium
    // Unreachable verdicts stay armed.
    const env::UniformField uniform(Watts(1e-3));
    const env::FieldHarvester constant_view(uniform, pos);
    ASSERT_TRUE(constant_view.constantPower().has_value());
    EXPECT_EQ(constant_view.constantPower()->value(), 1e-3);
}

} // namespace
