/**
 * @file
 * Fleet determinism guarantees (DESIGN.md §16): per-device sampling is
 * a pure function of (seed, index); a fleet run's SummaryReport — and
 * any merged telemetry — is byte-identical across shard layouts; equal
 * seeds reproduce, different seeds diverge; and the TrialBuilder
 * .environment() knob routes a single trial through the same
 * FieldHarvester view a hand-built config would.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "apps/apps.hpp"
#include "env/field.hpp"
#include "fleet/fleet.hpp"
#include "sched/policy.hpp"
#include "sched/trial.hpp"
#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;

env::SolarConfig
testSolar()
{
    env::SolarConfig solar;
    solar.peak = Watts(10e-3);
    solar.day_length = Seconds(240.0);
    solar.sample_period = Seconds(5.0);
    solar.cloud_depth = 0.5;
    solar.shading_depth = 0.3;
    solar.seed = 3;
    return solar;
}

/** Two-cohort fixture shared by the determinism cases. */
struct FleetFixture
{
    FleetFixture()
        : ps(apps::periodicSensing()), rr(apps::responsiveReporting()),
          field(testSolar())
    {
        culpeo_policy.initialize(ps);
        catnap_policy.initialize(rr);
        spec.cohorts = {
            {"ps-culpeo", &ps, &culpeo_policy, {}, 0.6},
            {"rr-catnap", &rr, &catnap_policy, {}, 0.4},
        };
        spec.devices = 48;
        spec.capacitance_scale = {0.8, 1.2};
        spec.esr_scale = {0.9, 1.5};
        spec.extent = 120.0;
        spec.field = &field;
        spec.duration = Seconds(60.0);
        spec.seed = 17;
    }

    sched::AppSpec ps;
    sched::AppSpec rr;
    sched::CulpeoPolicy culpeo_policy;
    sched::CatnapPolicy catnap_policy;
    env::SolarDiurnalField field;
    fleet::FleetSpec spec;
};

std::string
reportBytes(const fleet::SummaryReport &report)
{
    std::ostringstream out;
    report.writeJsonl(out);
    report.writeCsv(out);
    return out.str();
}

TEST(FleetSampling, PureFunctionOfSeedAndIndex)
{
    const FleetFixture fx;
    for (std::size_t i = 0; i < 200; ++i) {
        const fleet::DeviceRecord a = fleet::sampleDevice(fx.spec, i);
        const fleet::DeviceRecord b = fleet::sampleDevice(fx.spec, i);
        EXPECT_EQ(a.cohort, b.cohort);
        EXPECT_EQ(a.pos.x, b.pos.x);
        EXPECT_EQ(a.pos.y, b.pos.y);
        EXPECT_EQ(a.cap_scale, b.cap_scale);
        EXPECT_EQ(a.esr_scale, b.esr_scale);
        EXPECT_EQ(a.trial_seed, b.trial_seed);

        EXPECT_LT(a.cohort, fx.spec.cohorts.size());
        EXPECT_GE(a.pos.x, 0.0);
        EXPECT_LT(a.pos.x, fx.spec.extent);
        EXPECT_GE(a.pos.y, 0.0);
        EXPECT_LT(a.pos.y, fx.spec.extent);
        EXPECT_GE(a.cap_scale, fx.spec.capacitance_scale.lo);
        EXPECT_LE(a.cap_scale, fx.spec.capacitance_scale.hi);
        EXPECT_GE(a.esr_scale, fx.spec.esr_scale.lo);
        EXPECT_LE(a.esr_scale, fx.spec.esr_scale.hi);
        EXPECT_EQ(a.trial_seed,
                  fx.spec.seed + i * fx.spec.seed_stride);
    }
    // Positions actually spread (the draw is index-sensitive).
    const fleet::DeviceRecord d0 = fleet::sampleDevice(fx.spec, 0);
    const fleet::DeviceRecord d1 = fleet::sampleDevice(fx.spec, 1);
    EXPECT_NE(d0.pos.x, d1.pos.x);
}

TEST(FleetDeterminism, ShardCountInvariance)
{
    const FleetFixture fx;
    fleet::FleetOptions one;
    one.shard_devices = 1;
    fleet::FleetOptions seven;
    seven.shard_devices = 7;
    fleet::FleetOptions all;
    all.shard_devices = fx.spec.devices;

    const fleet::SummaryReport a = fleet::runFleet(fx.spec, one);
    const fleet::SummaryReport b = fleet::runFleet(fx.spec, seven);
    const fleet::SummaryReport c = fleet::runFleet(fx.spec, all);

    const std::string bytes = reportBytes(a);
    EXPECT_EQ(bytes, reportBytes(b))
        << "shards of 1 vs 7 devices must agree byte-for-byte";
    EXPECT_EQ(bytes, reportBytes(c))
        << "shards of 1 vs 48 devices must agree byte-for-byte";

    ASSERT_EQ(a.devices.size(), fx.spec.devices);
    for (std::size_t i = 0; i < a.devices.size(); ++i) {
        EXPECT_EQ(a.devices[i].arrived, b.devices[i].arrived);
        EXPECT_EQ(a.devices[i].captured, b.devices[i].captured);
        EXPECT_EQ(a.devices[i].power_failures,
                  b.devices[i].power_failures);
        EXPECT_EQ(a.devices[i].background_runs,
                  b.devices[i].background_runs);
    }
}

TEST(FleetDeterminism, TelemetryMergeIsShardInvariant)
{
    if (!telemetry::kEnabled)
        GTEST_SKIP() << "telemetry compiled out";
    FleetFixture fx;
    fx.spec.devices = 12; // Keep the instrumented run small.

    const auto summarize = [&](std::size_t shard_devices) {
        telemetry::Telemetry sink;
        fleet::FleetOptions options;
        options.shard_devices = shard_devices;
        options.telemetry = &sink;
        fleet::runFleet(fx.spec, options);
        return sink.summary();
    };
    const telemetry::TelemetrySummary a = summarize(1);
    const telemetry::TelemetrySummary b = summarize(5);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.brownouts, b.brownouts);
    EXPECT_EQ(a.recharges, b.recharges);
    EXPECT_EQ(a.tasks_started, b.tasks_started);
    EXPECT_EQ(a.tasks_completed, b.tasks_completed);
    EXPECT_EQ(a.min_margin_v, b.min_margin_v);
    EXPECT_EQ(a.recharge_seconds, b.recharge_seconds);
}

TEST(FleetDeterminism, SeedReproducesAndPerturbs)
{
    FleetFixture fx;
    fx.spec.devices = 24;
    const fleet::SummaryReport a = fleet::runFleet(fx.spec);
    const fleet::SummaryReport b = fleet::runFleet(fx.spec);
    EXPECT_EQ(reportBytes(a), reportBytes(b));

    fx.spec.seed += 1;
    const fleet::SummaryReport c = fleet::runFleet(fx.spec);
    EXPECT_NE(reportBytes(a), reportBytes(c))
        << "a different seed must sample a different population";
}

TEST(FleetDeterminism, RegistryPoliciesMixAndStayShardInvariant)
{
    // Heterogeneous per-device policies selected by registry name: the
    // fleet materializes its own instances, and the report stays
    // byte-identical across shard layouts.
    FleetFixture fx;
    fx.spec.cohorts = {
        {"ps-culpeo", &fx.ps, nullptr, "culpeo", 0.5},
        {"rr-catnap", &fx.rr, nullptr, "catnap", 0.3},
        {"rr-uarch", &fx.rr, nullptr, "culpeo-uarch", 0.2},
    };
    fx.spec.devices = 24;

    fleet::FleetOptions one;
    one.shard_devices = 1;
    fleet::FleetOptions five;
    five.shard_devices = 5;
    const fleet::SummaryReport a = fleet::runFleet(fx.spec, one);
    const fleet::SummaryReport b = fleet::runFleet(fx.spec, five);
    EXPECT_EQ(reportBytes(a), reportBytes(b))
        << "registry-made policies must not break shard invariance";

    // All three cohorts actually received devices.
    for (const fleet::CohortSummary &c : a.cohorts)
        EXPECT_GT(c.devices, 0u) << c.name;

    // A registry policy and the equivalent borrowed instance agree.
    fleet::FleetSpec borrowed = fx.spec;
    borrowed.cohorts = {
        {"ps-culpeo", &fx.ps, &fx.culpeo_policy, {}, 0.5},
        {"rr-catnap", &fx.rr, &fx.catnap_policy, {}, 0.3},
        {"rr-uarch", &fx.rr, nullptr, "culpeo-uarch", 0.2},
    };
    const fleet::SummaryReport c = fleet::runFleet(borrowed, five);
    EXPECT_EQ(reportBytes(a), reportBytes(c));
}

TEST(FleetValidation, CohortNeedsExactlyOnePolicySource)
{
    FleetFixture fx;
    fx.spec.devices = 4;
    fx.spec.cohorts = {{"ps-none", &fx.ps, nullptr, "", 1.0}};
    EXPECT_THROW(fleet::runFleet(fx.spec), log::FatalError);

    fx.spec.cohorts = {
        {"ps-both", &fx.ps, &fx.culpeo_policy, "catnap", 1.0}};
    EXPECT_THROW(fleet::runFleet(fx.spec), log::FatalError);

    // Non-stationary policies cannot share fleet threshold tables.
    fx.spec.cohorts = {{"ps-eab", &fx.ps, nullptr, "eab", 1.0}};
    EXPECT_THROW(fleet::runFleet(fx.spec), log::FatalError);
}

TEST(FleetValidation, ArtifactWriteFailuresNameThePath)
{
    FleetFixture fx;
    fx.spec.devices = 4;
    const fleet::SummaryReport report = fleet::runFleet(fx.spec);
    const std::string bad = "/nonexistent-dir/fleet.csv";
    try {
        report.writeCsvFile(bad);
        FAIL() << "unwritable CSV path did not throw";
    } catch (const log::FatalError &error) {
        EXPECT_NE(std::string(error.what()).find(bad),
                  std::string::npos)
            << error.what();
    }
    EXPECT_THROW(report.writeJsonlFile("/nonexistent-dir/fleet.jsonl"),
                 log::FatalError);
}

TEST(TrialBuilderEnvironment, MatchesExplicitFieldHarvester)
{
    FleetFixture fx;
    const env::Position pos{40.0, 25.0};

    const sched::TrialResult built = TrialBuilder()
                                         .app(fx.ps)
                                         .policy(fx.culpeo_policy)
                                         .environment(fx.field, pos)
                                         .duration(Seconds(60.0))
                                         .seed(123)
                                         .run();

    const env::FieldHarvester view(fx.field, pos);
    sched::TrialConfig config;
    config.duration = Seconds(60.0);
    config.seed = 123;
    config.harvester = &view;
    const sched::TrialResult manual =
        sched::runTrialWith(fx.ps, fx.culpeo_policy, config);

    ASSERT_EQ(built.per_event.size(), manual.per_event.size());
    for (std::size_t i = 0; i < built.per_event.size(); ++i) {
        EXPECT_EQ(built.per_event[i].arrived, manual.per_event[i].arrived);
        EXPECT_EQ(built.per_event[i].captured,
                  manual.per_event[i].captured);
    }
    EXPECT_EQ(built.power_failures, manual.power_failures);
    EXPECT_EQ(built.background_runs, manual.background_runs);
}

} // namespace
