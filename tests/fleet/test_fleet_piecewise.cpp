/**
 * @file
 * Differential suite for time-varying harvest lanes: seeded random
 * populations whose lanes each view a shared env:: field through a
 * FieldHarvester run through both executors — the lockstep kernel in
 * exact_replay mode and the sim::Device reference (runLaneScalar) —
 * and every op outcome must match bit-for-bit, exactly like the
 * constant-harvest equivalence suite. This is the acceptance gate for
 * the piecewise-constant threading: macro steps capped at piece
 * boundaries, per-piece harvest refresh, and the constant-only gating
 * of equilibrium Unreachable verdicts must mirror the scalar engine
 * under a sky that changes every few hundred milliseconds.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "batch/engine.hpp"
#include "env/field.hpp"
#include "load/profile.hpp"
#include "sim/power_system.hpp"
#include "util/random.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;

constexpr double kExactTol = 1e-9;

std::uint64_t
baseSeed()
{
    const char *value = std::getenv("CULPEO_FUZZ_SEED");
    if (value == nullptr || *value == '\0')
        return 20260809;
    return std::strtoull(value, nullptr, 10);
}

struct Population
{
    std::vector<batch::LaneSpec> specs;
    std::vector<std::unique_ptr<load::CurrentProfile>> profiles;
    std::vector<std::unique_ptr<env::FieldHarvester>> views;
};

load::CurrentProfile *
randomProfile(Population &pop, util::Rng &rng)
{
    std::vector<load::Segment> segments;
    const int count = 1 + int(rng.uniformInt(3));
    for (int s = 0; s < count; ++s)
        segments.push_back({Seconds(rng.uniform(0.5e-3, 20e-3)),
                            Amps(rng.uniform(1e-3, 40e-3))});
    pop.profiles.push_back(std::make_unique<load::CurrentProfile>(
        "piecewise", std::move(segments)));
    return pop.profiles.back().get();
}

batch::LaneOp
randomOp(Population &pop, util::Rng &rng,
         const sim::PowerSystemConfig &config)
{
    const Volts voff = config.monitor.voff;
    const Volts vhigh = config.monitor.vhigh;
    switch (rng.uniformInt(4)) {
    case 0: {
        const Volts level(rng.uniform(voff.value() + 0.02, vhigh.value()));
        const Seconds deadline(rng.uniform(0.5, 10.0));
        return batch::LaneOp::waitLevel(level, deadline);
    }
    case 1:
        return batch::LaneOp::waitEnabled(Seconds(rng.uniform(0.5, 8.0)));
    case 2:
        return batch::LaneOp::runProfile(randomProfile(pop, rng),
                                         Seconds(50e-6));
    default:
        return batch::LaneOp::idleFor(Seconds(rng.uniform(0.05, 2.0)));
    }
}

Population
randomPopulation(const env::HarvestField &field, std::uint64_t seed,
                 std::size_t lanes)
{
    Population pop;
    util::Rng rng(seed);
    const sim::PowerSystemConfig config = sim::capybaraConfig();
    for (std::size_t l = 0; l < lanes; ++l) {
        batch::LaneSpec spec;
        spec.config = config;
        spec.vstart = Volts(rng.uniform(config.monitor.voff.value() + 0.1,
                                        config.monitor.vhigh.value()));
        spec.start_enabled = true;
        pop.views.push_back(std::make_unique<env::FieldHarvester>(
            field, env::Position{rng.uniform(0.0, 100.0),
                                 rng.uniform(0.0, 100.0)}));
        spec.harvester = pop.views.back().get();
        const int ops = 3 + int(rng.uniformInt(5));
        for (int i = 0; i < ops; ++i)
            spec.program.push_back(randomOp(pop, rng, config));
        pop.specs.push_back(spec);
    }
    return pop;
}

void
expectExactMatch(const batch::LaneResult &kernel,
                 const batch::LaneResult &scalar, std::uint64_t seed,
                 std::size_t lane)
{
    const std::string where = "seed " + std::to_string(seed) + " lane " +
                              std::to_string(lane);
    ASSERT_EQ(kernel.ops.size(), scalar.ops.size()) << where;
    for (std::size_t i = 0; i < kernel.ops.size(); ++i) {
        const batch::OpOutcome &k = kernel.ops[i];
        const batch::OpOutcome &s = scalar.ops[i];
        ASSERT_EQ(int(k.kind), int(s.kind)) << where << " op " << i;
        EXPECT_EQ(int(k.wait_status), int(s.wait_status))
            << where << " op " << i;
        EXPECT_NEAR(k.elapsed.value(), s.elapsed.value(), kExactTol)
            << where << " op " << i;
        EXPECT_NEAR(k.voltage.value(), s.voltage.value(), kExactTol)
            << where << " op " << i;
        EXPECT_EQ(k.diagnostic, s.diagnostic) << where << " op " << i;
        EXPECT_EQ(k.completed, s.completed) << where << " op " << i;
        EXPECT_EQ(k.power_failed, s.power_failed) << where << " op " << i;
        EXPECT_NEAR(k.vmin.value(), s.vmin.value(), kExactTol)
            << where << " op " << i;
    }
    EXPECT_EQ(kernel.power_failures, scalar.power_failures) << where;
    EXPECT_NEAR(kernel.end_time.value(), scalar.end_time.value(), kExactTol)
        << where;
    EXPECT_NEAR(kernel.vend.value(), scalar.vend.value(), kExactTol)
        << where;
}

void
runDifferential(const env::HarvestField &field, std::uint64_t seed)
{
    Population pop = randomPopulation(field, seed, 8);
    batch::BatchOptions options;
    options.exact_replay = true;
    const std::vector<batch::LaneResult> kernel =
        batch::runPopulation(pop.specs, options);
    for (std::size_t l = 0; l < pop.specs.size(); ++l) {
        const batch::LaneResult scalar =
            batch::runLaneScalar(pop.specs[l]);
        expectExactMatch(kernel[l], scalar, seed, l);
    }
}

TEST(FleetPiecewise, ExactReplayMatchesScalarUnderSolarField)
{
    env::SolarConfig solar;
    solar.peak = Watts(8e-3);
    solar.day_length = Seconds(60.0); // Fast day: waits cross pieces.
    solar.sample_period = Seconds(0.4);
    solar.cloud_depth = 0.6;
    solar.cell_size = 10.0;
    solar.shading_depth = 0.3;
    solar.seed = 5;
    const env::SolarDiurnalField field(solar);
    for (std::uint64_t i = 0; i < 4; ++i)
        runDifferential(field, baseSeed() + i);
}

TEST(FleetPiecewise, ExactReplayMatchesScalarUnderKineticField)
{
    env::KineticConfig kinetic;
    kinetic.baseline = Watts(100e-6);
    kinetic.burst = Watts(6e-3);
    kinetic.sample_period = Seconds(0.2);
    kinetic.burst_probability = 0.25;
    kinetic.cell_size = 8.0;
    kinetic.seed = 11;
    const env::KineticBurstField field(kinetic);
    for (std::uint64_t i = 0; i < 4; ++i)
        runDifferential(field, baseSeed() + 100 + i);
}

TEST(FleetPiecewise, ConstantFieldLaneMatchesPlainHarvestLane)
{
    // A UniformField view must be bit-identical to the pre-field
    // constant-wattage lane: LaneRt folds a constant harvester into
    // the same harvest_w scalar the plain path uses.
    const env::UniformField field(Watts(3e-3));
    Population viewed = randomPopulation(field, baseSeed() + 999, 6);
    Population plain = randomPopulation(field, baseSeed() + 999, 6);
    for (batch::LaneSpec &spec : plain.specs) {
        spec.harvester = nullptr;
        spec.harvest = Watts(3e-3);
    }
    batch::BatchOptions options;
    options.exact_replay = true;
    const std::vector<batch::LaneResult> a =
        batch::runPopulation(viewed.specs, options);
    const std::vector<batch::LaneResult> b =
        batch::runPopulation(plain.specs, options);
    for (std::size_t l = 0; l < a.size(); ++l)
        expectExactMatch(a[l], b[l], baseSeed() + 999, l);
}

} // namespace
