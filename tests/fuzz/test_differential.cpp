/**
 * @file
 * Randomized differential test harness (the fault-injection tentpole):
 * seeded scenario generators drive Culpeo-PG, Culpeo-R, and the CatNap
 * energy-only baseline against brute-force ground-truth simulation, and
 * full scheduler/runtime trials run under injected faults with the
 * invariant monitor attached.
 *
 * Every scenario derives from a single 64-bit seed; failures print the
 * seed so `CULPEO_FUZZ_SEED=<seed> CULPEO_FUZZ_ITERS=1 ./test_fuzz`
 * replays exactly one failing case. CULPEO_FUZZ_ITERS scales the
 * iteration budget (default keeps tier-1 runtime bounded).
 *
 * Execution model: scenarios are evaluated on the shared sweep
 * executor (util::ThreadPool, sized by CULPEO_THREADS) as *pure*
 * per-seed verdict computations — no gtest calls off the main thread —
 * and all assertions replay serially over the ordered verdicts. Each
 * scenario's randomness derives only from its seed, so the verdict
 * vector (and therefore every assertion) is bit-identical whether the
 * pool runs 1 thread or many.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "core/vsafe_pg.hpp"
#include "fault/injector.hpp"
#include "fault/invariants.hpp"
#include "fault/scenario.hpp"
#include "harness/baselines.hpp"
#include "harness/ground_truth.hpp"
#include "harness/profiling.hpp"
#include "harness/vsafe_cache.hpp"
#include "mcu/adc.hpp"
#include "runtime/intermittent.hpp"
#include "sched/policy.hpp"
#include "sched/trial.hpp"
#include "telemetry/telemetry.hpp"
#include "util/parallel.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    const unsigned long parsed = std::strtoul(value, nullptr, 10);
    return parsed == 0 ? fallback : unsigned(parsed);
}

bool
seedOverridden()
{
    const char *value = std::getenv("CULPEO_FUZZ_SEED");
    return value != nullptr && *value != '\0';
}

std::uint64_t
baseSeed()
{
    const char *value = std::getenv("CULPEO_FUZZ_SEED");
    if (value == nullptr || *value == '\0')
        return 20220101; // Fixed default: tier-1 is deterministic.
    return std::strtoull(value, nullptr, 10);
}

std::string
seedHint(std::uint64_t seed)
{
    return "replay with CULPEO_FUZZ_SEED=" + std::to_string(seed) +
           " CULPEO_FUZZ_ITERS=1";
}

/**
 * CULPEO_TRACE_OUT=<prefix> asks failing scheduling scenarios to dump
 * their telemetry trace as <prefix>.<seed>.jsonl (one file per failing
 * seed, so parallel scenario evaluation never interleaves writes).
 */
const char *
traceOutPrefix()
{
    const char *value = std::getenv("CULPEO_TRACE_OUT");
    return (value != nullptr && *value != '\0') ? value : nullptr;
}

std::string
dumpFailureTrace(const telemetry::Telemetry &sink, std::uint64_t seed)
{
    const char *prefix = traceOutPrefix();
    if (prefix == nullptr)
        return "\n(set CULPEO_TRACE_OUT=<prefix> to dump a trace)";
    const std::string path =
        std::string(prefix) + "." + std::to_string(seed) + ".jsonl";
    if (!sink.writeJsonlFile(path))
        return "\n(failed to write trace to " + path + ")";
    return "\ntrace written to " + path;
}

/** Seeds base + 0 .. base + count-1, the per-item work list. */
std::vector<std::uint64_t>
seedRange(std::uint64_t base, unsigned count)
{
    std::vector<std::uint64_t> seeds(count);
    std::iota(seeds.begin(), seeds.end(), base);
    return seeds;
}

/**
 * Differential check of the single-task admission rule, against the
 * paper's own accuracy criterion (Figure 10): for every randomized
 * (power system, task) pair, each Culpeo estimate must sit no more
 * than 2% of the operating range below the brute-force truth, and an
 * admission made with the scheduler's 20 mV dispatch guard band must
 * survive ground-truth simulation (Theorem 1 as deployed). A CatNap
 * estimate below the true requirement must brown out — the paper's
 * predicted failure mode, confirmed rather than assumed.
 */
struct EstimateVerdict
{
    bool checked = false;     ///< Estimate stored and within Vhigh.
    double vsafe = 0.0;       ///< The estimate itself (V).
    bool admission_ok = false; ///< Guard-banded admission completed.
    std::string persistence_detail; ///< Empty = idempotence held.
};

struct AdmissionVerdict
{
    std::uint64_t seed = 0;
    bool feasible = false;
    double truth_vsafe = 0.0;
    double tolerance = 0.0;
    EstimateVerdict pg;
    EstimateVerdict r_uarch;
    EstimateVerdict r_isr;
    bool catnap_unsafe = false;   ///< Estimate below tolerance band.
    double catnap_vsafe = 0.0;
    bool catnap_completed = false; ///< It must NOT have completed.
};

AdmissionVerdict
runAdmissionScenario(std::uint64_t seed)
{
    AdmissionVerdict v;
    v.seed = seed;
    const fault::TaskScenario scenario = fault::randomTaskScenario(seed);

    const harness::GroundTruth truth =
        harness::VsafeCache::global().findOrCompute(scenario.config,
                                                    scenario.profile);
    if (!truth.feasible)
        return v; // Task too heavy for this buffer even from Vhigh.
    v.feasible = true;
    v.truth_vsafe = truth.vsafe.value();
    const double vhigh = scenario.config.monitor.vhigh.value();
    // Figure 10's safety criterion: an estimate within 2% of the
    // operating range below the truth is "correct"; the deployed
    // scheduler covers that band with its dispatch guard band.
    v.tolerance = 0.02 * (vhigh - scenario.config.monitor.voff.value());
    const Volts guard(20e-3);
    const auto admitAt = [&](Volts vsafe) {
        return Volts(std::min(vsafe.value() + guard.value(), vhigh));
    };

    // Culpeo-PG: the compile-time estimate, checked by simulation.
    const core::PgResult pg = core::culpeoPg(
        scenario.profile, core::modelFromConfig(scenario.config));
    if (pg.vsafe.value() <= vhigh) {
        v.pg.checked = true;
        v.pg.vsafe = pg.vsafe.value();
        v.pg.admission_ok = harness::completesFrom(
            scenario.config, admitAt(pg.vsafe), scenario.profile);
    }

    // Culpeo-R: profile once through the Table I interface, then
    // check the stored estimate the same way. The uArch block's
    // 100 kHz capture resolves any generated profile; the 1 ms ISR
    // timer is only held to the accuracy claim on profiles whose
    // segments it can actually sample — a high-current burst
    // shorter than the sample period falls between ISR reads by
    // design, which is the paper's motivation for the uArch block
    // (Section V-D).
    double shortest_segment = 1.0;
    for (const auto &segment : scenario.profile.segments())
        shortest_segment =
            std::min(shortest_segment, segment.duration.value());
    const double isr_period =
        1.0 / mcu::msp430OnChipAdc().sample_rate.value();

    const auto checkR = [&](std::unique_ptr<core::Profiler> profiler,
                            EstimateVerdict &out) {
        core::Culpeo culpeo(core::modelFromConfig(scenario.config),
                            std::move(profiler));
        const harness::ProfileOutcome outcome =
            harness::profileTaskFrom(scenario.config, Volts(vhigh),
                                     culpeo, 1, scenario.profile);
        if (!outcome.stored || culpeo.getVsafe(1).value() > vhigh)
            return;
        out.checked = true;
        out.vsafe = culpeo.getVsafe(1).value();
        out.admission_ok = harness::completesFrom(
            scenario.config, admitAt(culpeo.getVsafe(1)),
            scenario.profile);
        const auto persistence =
            fault::checkPersistenceIdempotence(culpeo, {1, 2});
        if (persistence.has_value())
            out.persistence_detail = persistence->detail;
    };
    checkR(std::make_unique<core::UArchProfiler>(), v.r_uarch);
    if (shortest_segment >= isr_period)
        checkR(std::make_unique<core::IsrProfiler>(), v.r_isr);

    // CatNap: when the energy-only estimate lands below even the
    // tolerance band, the admission it implies must actually fail.
    const harness::BaselineEstimates baselines =
        harness::estimateBaselines(scenario.config, scenario.profile);
    if (baselines.catnap_measured.value() <
        v.truth_vsafe - v.tolerance) {
        v.catnap_unsafe = true;
        v.catnap_vsafe = baselines.catnap_measured.value();
        v.catnap_completed = harness::completesFrom(
            scenario.config, baselines.catnap_measured,
            scenario.profile);
    }
    return v;
}

TEST(FuzzDifferential, VsafeAdmissionsSurviveGroundTruth)
{
    const unsigned scenarios = envUnsigned("CULPEO_FUZZ_ITERS", 200);
    const std::uint64_t base = baseSeed();

    // Compute phase, off-thread and gtest-free; assert phase, serial.
    const std::vector<AdmissionVerdict> verdicts =
        util::ThreadPool::shared().parallelMap(
            seedRange(base, scenarios), runAdmissionScenario);

    unsigned feasible_scenarios = 0;
    unsigned pg_checked = 0;
    unsigned r_uarch_checked = 0;
    unsigned r_isr_checked = 0;
    unsigned catnap_unsafe = 0;

    for (const AdmissionVerdict &v : verdicts) {
        SCOPED_TRACE(seedHint(v.seed));
        if (!v.feasible)
            continue;
        ++feasible_scenarios;

        const auto checkEstimate = [&](const EstimateVerdict &e,
                                       const char *label) {
            if (!e.checked)
                return false;
            EXPECT_GE(e.vsafe, v.truth_vsafe - v.tolerance)
                << label << " estimate " << e.vsafe
                << " V is unsafely below truth " << v.truth_vsafe
                << " V";
            EXPECT_TRUE(e.admission_ok)
                << label << " admission with guard band browned out "
                   "(estimate " << e.vsafe << " V, truth "
                << v.truth_vsafe << " V)";
            EXPECT_TRUE(e.persistence_detail.empty())
                << e.persistence_detail;
            return true;
        };
        if (checkEstimate(v.pg, "Culpeo-PG"))
            ++pg_checked;
        if (checkEstimate(v.r_uarch, "Culpeo-R-uArch"))
            ++r_uarch_checked;
        if (checkEstimate(v.r_isr, "Culpeo-R-ISR"))
            ++r_isr_checked;

        if (v.catnap_unsafe) {
            ++catnap_unsafe;
            EXPECT_FALSE(v.catnap_completed)
                << "CatNap at " << v.catnap_vsafe
                << " V was below truth " << v.truth_vsafe
                << " V yet completed";
        }
    }

    RecordProperty("feasible_scenarios", int(feasible_scenarios));
    RecordProperty("catnap_unsafe", int(catnap_unsafe));
    if (!seedOverridden()) {
        // Aggregate expectations hold for the default sweep only: a
        // single replayed seed may be infeasible, carry sub-ISR-period
        // bursts (no ISR check), or never push CatNap under truth.
        EXPECT_GT(feasible_scenarios, scenarios / 2)
            << "scenario generator produces too few feasible tasks";
        EXPECT_GT(pg_checked, 0u);
        EXPECT_GT(r_uarch_checked, 0u);
        EXPECT_GT(r_isr_checked, 0u);
        // With the default seed the sweep must exhibit the paper's
        // predicted CatNap failure mode at least once.
        EXPECT_GT(catnap_unsafe, 0u);
    }
}

/**
 * Composition invariant over profiled task sets: sequence requirements
 * from real Culpeo-R results dominate every member's standalone check,
 * and an unprofiled member forces the conservative Vhigh bound.
 */
struct CompositionVerdict
{
    std::uint64_t seed = 0;
    bool skipped = false; ///< No profiled member stored an estimate.
    std::string dominance_detail; ///< Empty = dominance held.
    double multi = 0.0;           ///< getVsafeMulti over the set.
    double max_member = 0.0;      ///< Largest member Vsafe.
    double with_unknown = 0.0;    ///< Multi with an unprofiled task.
    double vhigh = 0.0;
};

CompositionVerdict
runCompositionScenario(std::uint64_t seed)
{
    CompositionVerdict v;
    v.seed = seed;
    const fault::TaskScenario first = fault::randomTaskScenario(seed);
    const Volts voff = first.config.monitor.voff;
    const Volts vhigh = first.config.monitor.vhigh;
    v.vhigh = vhigh.value();

    core::Culpeo culpeo(core::modelFromConfig(first.config),
                        std::make_unique<core::IsrProfiler>());
    std::vector<core::TaskRequirement> requirements;
    std::vector<core::TaskId> ids;
    for (core::TaskId id = 1; id <= 3; ++id) {
        // Distinct task profiles on the shared power system.
        const load::CurrentProfile profile =
            fault::randomTaskScenario(seed + id * 7919).profile;
        const harness::ProfileOutcome outcome =
            harness::profileTaskFrom(first.config, vhigh, culpeo, id,
                                     profile);
        if (!outcome.stored)
            continue;
        ids.push_back(id);
        requirements.push_back(core::requirementFrom(
            profile.name(), culpeo.getVsafe(id), culpeo.getVdrop(id),
            voff));
    }
    if (requirements.empty()) {
        v.skipped = true;
        return v;
    }

    const auto violation =
        fault::checkCompositionDominance(requirements, voff);
    if (violation.has_value())
        v.dominance_detail = violation->detail;

    // The facade's sequence query dominates each member too.
    v.multi = culpeo.getVsafeMulti(ids).value();
    for (const core::TaskId id : ids)
        v.max_member =
            std::max(v.max_member, culpeo.getVsafe(id).value());
    // An unprofiled task degrades the whole sequence to Vhigh.
    std::vector<core::TaskId> with_unknown = ids;
    with_unknown.push_back(200);
    v.with_unknown = culpeo.getVsafeMulti(with_unknown).value();
    return v;
}

TEST(FuzzDifferential, CompositionNeverAdmitsBelowSingleTaskCheck)
{
    const unsigned sets =
        std::max(8u, envUnsigned("CULPEO_FUZZ_ITERS", 200) / 5);
    const std::uint64_t base = baseSeed() + 0x1000000;

    const std::vector<CompositionVerdict> verdicts =
        util::ThreadPool::shared().parallelMap(seedRange(base, sets),
                                               runCompositionScenario);

    for (const CompositionVerdict &v : verdicts) {
        SCOPED_TRACE(seedHint(v.seed));
        if (v.skipped)
            continue;
        EXPECT_TRUE(v.dominance_detail.empty()) << v.dominance_detail;
        EXPECT_GE(v.multi + 1e-9, v.max_member);
        EXPECT_GE(v.with_unknown + 1e-9, v.vhigh);
    }
}

/**
 * Full scheduler trials under injected faults: harvest dropouts,
 * leakage spikes, aging steps, forced reboots, and ADC read error all
 * active, with the invariant monitor auditing every commitment the
 * Culpeo policy makes. The policy profiles against a zero-harvest,
 * end-of-life copy of the app (the worst state any injected fault can
 * reach), so runtime faults can only make its estimates conservative.
 */
struct SchedulingVerdict
{
    std::uint64_t seed = 0;
    bool culpeo_clean = false;
    std::string culpeo_report;
    unsigned commits = 0;
    unsigned reboots = 0;
    unsigned catnap_violations = 0;
};

SchedulingVerdict
runSchedulingScenario(std::uint64_t seed)
{
    SchedulingVerdict v;
    v.seed = seed;
    const fault::AppScenario scenario = fault::randomAppScenario(seed);

    // Profile at the envelope of every injectable fault: no incoming
    // power, and the capacitor already at the worst aging an AgingStep
    // may apply.
    const fault::FaultKnobs knobs;
    sched::AppSpec profiling_app = scenario.app;
    profiling_app.harvest = Watts(0.0);
    auto &aging = profiling_app.power.capacitor;
    aging.capacitance_fraction = std::min(
        aging.capacitance_fraction, knobs.min_capacitance_fraction);
    aging.esr_multiplier =
        std::max(aging.esr_multiplier, knobs.max_esr_multiplier);

    // Profile with the uArch block: generated tasks carry bursts
    // shorter than the ISR profiler's 1 ms sample period, which the
    // ISR design cannot resolve by construction (Section V-D). ISR
    // accuracy on resolvable profiles is covered by the admissions
    // sweep above.
    sched::CulpeoPolicy culpeo_policy(/*use_uarch=*/true);
    culpeo_policy.initialize(profiling_app);
    {
        fault::FaultInjector injector(scenario.plan, seed);
        fault::InvariantMonitor monitor(scenario.app.power.monitor.voff);
        telemetry::Telemetry trace_sink;
        TrialBuilder trial = TrialBuilder()
                                 .app(scenario.app)
                                 .policy(culpeo_policy)
                                 .duration(scenario.duration)
                                 .seed(seed)
                                 .faults(&injector)
                                 .observer(&monitor);
        if (traceOutPrefix() != nullptr)
            trial.telemetry(&trace_sink);
        trial.run();
        v.culpeo_clean = monitor.clean();
        if (!v.culpeo_clean) {
            v.culpeo_report = monitor.report(seed);
            v.culpeo_report += dumpFailureTrace(trace_sink, seed);
        }
        v.commits = monitor.commits();
        v.reboots = monitor.exemptedReboots();
    }

    // The CatNap baseline under the identical scenario: violations
    // are counted, not asserted per-trial — the differential claim
    // is aggregate (it browns out somewhere; Culpeo never does).
    // CatNap measures its energy buckets on the part as built — it
    // has no ESR or aging model, so it gets no end-of-life
    // envelope — and that optimism is exactly the failure mode the
    // paper predicts for energy-only budgeting.
    sched::CatnapPolicy catnap_policy;
    catnap_policy.initialize(scenario.app);
    {
        fault::FaultInjector injector(scenario.plan, seed);
        fault::InvariantMonitor monitor(scenario.app.power.monitor.voff);
        TrialBuilder()
            .app(scenario.app)
            .policy(catnap_policy)
            .duration(scenario.duration)
            .seed(seed)
            .faults(&injector)
            .observer(&monitor)
            .run();
        v.catnap_violations = unsigned(monitor.violations().size());
    }
    return v;
}

TEST(FuzzDifferential, CulpeoSchedulingStaysCleanUnderInjectedFaults)
{
    const unsigned trials =
        std::max(8u, envUnsigned("CULPEO_FUZZ_ITERS", 200) / 8);
    const std::uint64_t base = baseSeed() + 0x2000000;

    const std::vector<SchedulingVerdict> verdicts =
        util::ThreadPool::shared().parallelMap(seedRange(base, trials),
                                               runSchedulingScenario);

    unsigned total_commits = 0;
    unsigned total_reboots = 0;
    unsigned catnap_violations = 0;
    for (const SchedulingVerdict &v : verdicts) {
        SCOPED_TRACE(seedHint(v.seed));
        EXPECT_TRUE(v.culpeo_clean) << v.culpeo_report;
        total_commits += v.commits;
        total_reboots += v.reboots;
        catnap_violations += v.catnap_violations;
    }

    RecordProperty("total_commits", int(total_commits));
    RecordProperty("catnap_violations", int(catnap_violations));
    if (!seedOverridden()) {
        EXPECT_GT(total_commits, 0u)
            << "no scenario exercised a committed dispatch";
        EXPECT_GT(total_reboots, 0u)
            << "no scenario exercised an injected reboot";
        EXPECT_GT(catnap_violations, 0u)
            << "CatNap survived every scenario; the differential "
               "harness lost its discriminating power";
    }
}

/**
 * Intermittent-runtime trials under injected faults: atomic tasks
 * re-execute across injected reboots while the Vsafe gate holds, and
 * Culpeo's persisted tables survive every snapshot/restore cycle.
 */
struct RuntimeVerdict
{
    std::uint64_t seed = 0;
    bool skipped = false; ///< No task stored an estimate.
    std::string persistence_detail; ///< Empty = idempotence held.
    bool monitor_clean = false;
    std::string monitor_report;
    bool nonterminating = false;
    std::string stuck_task;
    bool finished = false;
};

RuntimeVerdict
runRuntimeScenario(std::uint64_t seed)
{
    RuntimeVerdict v;
    v.seed = seed;
    const fault::TaskScenario scenario = fault::randomTaskScenario(seed);
    const Volts vhigh = scenario.config.monitor.vhigh;

    // Profile against the end-of-life envelope (see the scheduler
    // test above) so injected aging cannot outrun the estimates.
    const fault::FaultKnobs knobs;
    sim::PowerSystemConfig profiling_config = scenario.config;
    profiling_config.capacitor.capacitance_fraction =
        std::min(profiling_config.capacitor.capacitance_fraction,
                 knobs.min_capacitance_fraction);
    profiling_config.capacitor.esr_multiplier =
        std::max(profiling_config.capacitor.esr_multiplier,
                 knobs.max_esr_multiplier);

    core::Culpeo culpeo(core::modelFromConfig(profiling_config),
                        std::make_unique<core::IsrProfiler>());
    std::vector<runtime::AtomicTask> program;
    std::vector<core::TaskId> ids;
    for (core::TaskId id = 1; id <= 3; ++id) {
        const load::CurrentProfile profile =
            fault::randomTaskScenario(seed + id * 104729).profile;
        const harness::ProfileOutcome outcome = harness::profileTaskFrom(
            profiling_config, vhigh, culpeo, id, profile);
        if (!outcome.stored)
            continue;
        ids.push_back(id);
        program.push_back({id, profile.name(), profile});
    }
    if (program.empty()) {
        v.skipped = true;
        return v;
    }

    // Simulate the reboot cycle a real deployment would take: the
    // tables round-trip through persistent storage first.
    const auto image = culpeo.snapshot();
    culpeo.restore(image);
    const auto persistence =
        fault::checkPersistenceIdempotence(culpeo, ids);
    if (persistence.has_value())
        v.persistence_detail = persistence->detail;

    util::Rng plan_rng(seed ^ 0x5bd1e995);
    fault::FaultInjector injector(
        fault::randomPlan(plan_rng, Seconds(20.0)), seed);
    fault::InvariantMonitor monitor(scenario.config.monitor.voff);

    sim::Device device(scenario.config);
    sim::ConstantHarvester harvester(Watts(15e-3));
    device.setHarvester(&harvester);
    device.setFaultHooks(&injector);
    device.setObserver(&monitor);
    device.setBufferVoltage(vhigh);
    device.forceOutputEnabled(true);

    runtime::RuntimeOptions options;
    options.policy = runtime::DispatchPolicy::VsafeGated;
    options.culpeo = &culpeo;
    options.timeout = Seconds(60.0);
    // Same guard band the scheduler uses: absorbs ADC read error
    // and the Vsafe model-error tolerance.
    options.dispatch_margin = Volts(20e-3);
    const runtime::ProgramResult result =
        runtime::runProgram(device, program, options);

    v.monitor_clean = monitor.clean();
    if (!v.monitor_clean)
        v.monitor_report = monitor.report(seed);
    v.nonterminating = result.nonterminating;
    v.stuck_task = result.stuck_task;
    v.finished = result.finished;
    return v;
}

TEST(FuzzDifferential, RuntimeSurvivesInjectedRebootsWithCleanInvariants)
{
    const unsigned programs =
        std::max(6u, envUnsigned("CULPEO_FUZZ_ITERS", 200) / 20);
    const std::uint64_t base = baseSeed() + 0x3000000;

    const std::vector<RuntimeVerdict> verdicts =
        util::ThreadPool::shared().parallelMap(seedRange(base, programs),
                                               runRuntimeScenario);

    unsigned finished_programs = 0;
    for (const RuntimeVerdict &v : verdicts) {
        SCOPED_TRACE(seedHint(v.seed));
        if (v.skipped)
            continue;
        EXPECT_TRUE(v.persistence_detail.empty())
            << v.persistence_detail;
        EXPECT_TRUE(v.monitor_clean) << v.monitor_report;
        EXPECT_FALSE(v.nonterminating)
            << "Vsafe-gated program declared non-terminating at task "
            << v.stuck_task;
        if (v.finished)
            ++finished_programs;
    }

    if (!seedOverridden()) {
        EXPECT_GT(finished_programs, 0u)
            << "no fuzzed program ran to completion";
    }
}

} // namespace
