/**
 * @file
 * Drift-scenario differential tests for the safety supervisor (the
 * self-healing tentpole): under continuous capacitor degradation the
 * unsupervised Culpeo policy — profiled once on the pristine part —
 * brown-outs repeatedly, while the same policy wrapped by the
 * sched::Supervisor adapts its margins ahead of the drift, keeps the
 * invariant monitor clean, and still captures the still-feasible
 * events. Abrupt damage exercises the other half of the state machine:
 * bounded retry, demotion, and probe-driven re-admission, all visible
 * in the exported JSONL trace.
 *
 * Same execution model as test_differential.cpp: scenarios are pure
 * per-seed verdict computations on the shared pool, assertions replay
 * serially, and CULPEO_FUZZ_SEED / CULPEO_FUZZ_ITERS replay and scale
 * the randomized sweep.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "fault/invariants.hpp"
#include "fault/scenario.hpp"
#include "load/library.hpp"
#include "sched/policy.hpp"
#include "sched/supervisor.hpp"
#include "sched/trial.hpp"
#include "telemetry/telemetry.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    const unsigned long parsed = std::strtoul(value, nullptr, 10);
    return parsed == 0 ? fallback : unsigned(parsed);
}

bool
seedOverridden()
{
    const char *value = std::getenv("CULPEO_FUZZ_SEED");
    return value != nullptr && *value != '\0';
}

std::uint64_t
baseSeed()
{
    const char *value = std::getenv("CULPEO_FUZZ_SEED");
    if (value == nullptr || *value == '\0')
        return 20220101; // Fixed default: tier-1 is deterministic.
    return std::strtoull(value, nullptr, 10);
}

std::string
seedHint(std::uint64_t seed)
{
    return "replay with CULPEO_FUZZ_SEED=" + std::to_string(seed) +
           " CULPEO_FUZZ_ITERS=1";
}

std::vector<std::uint64_t>
seedRange(std::uint64_t base, unsigned count)
{
    std::vector<std::uint64_t> seeds(count);
    std::iota(seeds.begin(), seeds.end(), base);
    return seeds;
}

/** The sink's whole trace as one JSONL string (empty when disabled). */
std::string
traceText(const telemetry::Telemetry &sink)
{
    std::ostringstream out;
    sink.writeJsonl(out);
    return out.str();
}

bool
traceHasKind(const std::string &jsonl, const char *kind)
{
    return jsonl.find(std::string("\"kind\":\"") + kind + "\"") !=
           std::string::npos;
}

/**
 * The lifetime-drift app: one periodic sense event plus an aggressive
 * background drain. The drain matters — it keeps the buffer hovering at
 * the policy's reserve threshold, so event dispatches start from just
 * above their requirement (the regime Theorem 1 is about) instead of
 * coasting on a full buffer that hides the drift.
 */
sched::AppSpec
driftApp()
{
    sched::AppSpec app;
    app.name = "lifetime-drift";
    app.power = sim::capybaraConfig();
    app.harvest = 5.0_mW;

    sched::EventSpec sense;
    sense.name = "sense";
    sense.arrival = sched::Arrival::Periodic;
    sense.interval = 2.5_s;
    sense.deadline = 2.5_s;
    sense.chain = {{1, "sense", load::uniform(20.0_mA, 20.0_ms)}};
    app.events.push_back(sense);

    app.background =
        sched::SchedTask{9, "drain", load::uniform(10.0_mA, 50.0_ms)};
    app.background_period = 0.05_s;
    return app;
}

/** Slow wear over most of the trial: ESR up 2.2x, capacitance -12%. */
fault::FaultPlan
lifetimeDriftPlan()
{
    fault::FaultPlan plan;
    fault::DegradationModel drift;
    drift.shape = fault::DriftShape::Linear;
    drift.onset = 20.0_s;
    drift.ramp = 200.0_s;
    drift.esr_multiplier_end = 2.2;
    drift.capacitance_fraction_end = 0.88;
    plan.degradation = drift;
    return plan;
}

/**
 * The ISSUE's acceptance scenario: continuous ESR/capacitance drift
 * over a 250 s trial. Unsupervised, the stale profile admits dispatches
 * that brown out over and over (each one a Theorem-1 violation the
 * invariant monitor flags, followed by a ~20 s full recharge that
 * drops every event arriving meanwhile). Supervised, the drift
 * detector's margin floor tracks the deficit EWMA ahead of the first
 * brown-out: zero unsafe dispatches, zero power failures, and the
 * still-feasible event stream stays nearly fully captured.
 */
TEST(DriftSupervisor, SupervisedSurvivesLifetimeDriftUnsupervisedDoesNot)
{
    const sched::AppSpec app = driftApp();
    const fault::FaultPlan plan = lifetimeDriftPlan();
    const Seconds duration = 250.0_s;

    sched::CulpeoPolicy policy(/*use_uarch=*/true);
    policy.initialize(app); // Pristine profile: drift makes it stale.

    // --- Supervised run -------------------------------------------------
    fault::FaultInjector sup_injector(plan, /*noise_seed=*/1);
    fault::InvariantMonitor sup_monitor(app.power.monitor.voff);
    sched::Supervisor supervisor;
    telemetry::TelemetryConfig tel_config;
    tel_config.trace_capacity = 1u << 15; // Long trial, keep every event.
    telemetry::Telemetry sup_tel(tel_config);
    const sched::TrialResult supervised = TrialBuilder()
                                              .app(app)
                                              .policy(policy)
                                              .duration(duration)
                                              .seed(1)
                                              .faults(&sup_injector)
                                              .observer(&sup_monitor)
                                              .supervisor(&supervisor)
                                              .telemetry(&sup_tel)
                                              .run();

    // --- Unsupervised run (identical scenario) --------------------------
    fault::FaultInjector unsup_injector(plan, /*noise_seed=*/1);
    fault::InvariantMonitor unsup_monitor(app.power.monitor.voff);
    const sched::TrialResult unsupervised = TrialBuilder()
                                                .app(app)
                                                .policy(policy)
                                                .duration(duration)
                                                .seed(1)
                                                .faults(&unsup_injector)
                                                .observer(&unsup_monitor)
                                                .run();

    // Unsupervised: the stale profile commits unsafe dispatches — the
    // monitor catches Theorem-1 violations and the device cycles
    // through repeated brown-out/recharge, shedding most arrivals.
    EXPECT_FALSE(unsup_monitor.clean())
        << "drift never produced an unsafe dispatch; the scenario lost "
           "its discriminating power";
    EXPECT_GE(unsupervised.power_failures, 3u);
    EXPECT_LT(unsupervised.eventStats("sense").captureRate(), 0.75);

    // Supervised: same policy, same drift — zero unsafe dispatches,
    // zero brown-outs, and the event stream stays captured.
    EXPECT_TRUE(sup_monitor.clean()) << sup_monitor.report(1);
    EXPECT_EQ(supervised.power_failures, 0u);
    EXPECT_GE(supervised.eventStats("sense").captureRate(), 0.9);

    // The adaptation is observable: the drift alarm fired and margins
    // inflated before any brown-out could happen.
    const sched::SupervisorStats &stats = supervisor.stats();
    EXPECT_GE(stats.drift_alarms, 1u);
    EXPECT_GE(stats.margin_inflations, 1u);
    EXPECT_EQ(stats.sheds, 0u)
        << "nothing in this scenario becomes infeasible; the supervisor "
           "must absorb the drift without demoting";
    EXPECT_GT(supervisor.marginOf("sense").value(), 0.0);

    if (telemetry::kEnabled) {
        const std::string jsonl = traceText(sup_tel);
        EXPECT_TRUE(traceHasKind(jsonl, "drift_alarm"));
        EXPECT_TRUE(traceHasKind(jsonl, "margin_update"));
    }
}

/**
 * Abrupt damage instead of slow wear: an AgingStep multiplies ESR by
 * 2.5x mid-trial, making the heavy "burst" event genuinely infeasible
 * (its post-step requirement exceeds Vhigh) while the light "beacon"
 * stays feasible. The supervisor must retry within budget, demote the
 * hopeless task instead of livelocking, keep probing it on the backed-
 * off schedule, and leave every one of those decisions in the JSONL
 * trace. Unsupervised, the burst brown-outs at every arrival and the
 * collateral recharges starve the beacon too.
 */
TEST(DriftSupervisor, AbruptAgingShedsProbesAndKeepsTheLightTaskAlive)
{
    sched::AppSpec app;
    app.name = "abrupt-aging";
    app.power = sim::capybaraConfig();
    app.harvest = 15.0_mW;

    sched::EventSpec beacon;
    beacon.name = "beacon";
    beacon.arrival = sched::Arrival::Periodic;
    beacon.interval = 2.5_s;
    beacon.deadline = 2.5_s;
    beacon.chain = {{1, "beacon", load::uniform(20.0_mA, 20.0_ms)}};
    app.events.push_back(beacon);

    sched::EventSpec burst;
    burst.name = "burst";
    burst.arrival = sched::Arrival::Periodic;
    burst.interval = 10.0_s;
    burst.deadline = 10.0_s;
    burst.chain = {{2, "burst", load::uniform(50.0_mA, 60.0_ms)}};
    app.events.push_back(burst);

    fault::FaultPlan plan;
    plan.aging_steps.push_back({25.0_s, /*capacitance_fraction=*/1.0,
                                /*esr_multiplier=*/2.5});
    const Seconds duration = 150.0_s;

    sched::CulpeoPolicy policy(/*use_uarch=*/true);
    policy.initialize(app);

    fault::FaultInjector sup_injector(plan, 1);
    sched::Supervisor supervisor;
    telemetry::TelemetryConfig tel_config;
    tel_config.trace_capacity = 1u << 15;
    telemetry::Telemetry sup_tel(tel_config);
    const sched::TrialResult supervised = TrialBuilder()
                                              .app(app)
                                              .policy(policy)
                                              .duration(duration)
                                              .seed(1)
                                              .faults(&sup_injector)
                                              .supervisor(&supervisor)
                                              .telemetry(&sup_tel)
                                              .run();

    fault::FaultInjector unsup_injector(plan, 1);
    const sched::TrialResult unsupervised = TrialBuilder()
                                                .app(app)
                                                .policy(policy)
                                                .duration(duration)
                                                .seed(1)
                                                .faults(&unsup_injector)
                                                .run();

    // The full state machine ran: bounded retries, then demotion, then
    // probe-driven re-admissions (which fail and re-demote — the task
    // really is infeasible now).
    const sched::SupervisorStats &stats = supervisor.stats();
    EXPECT_GE(stats.retries, 1u);
    EXPECT_GE(stats.sheds, 1u);
    EXPECT_GE(stats.readmissions, 1u);
    EXPECT_EQ(supervisor.stateOf("burst"), sched::TaskHealth::Demoted);
    EXPECT_EQ(supervisor.stateOf("beacon"), sched::TaskHealth::Healthy);

    // Graceful degradation, not a livelock: the supervised run spends a
    // bounded number of brown-outs on the hopeless task (retry budget
    // plus the occasional probe), where the unsupervised run pays one
    // per arrival until the end of the trial.
    EXPECT_GE(supervised.power_failures, 1u);
    EXPECT_LE(supervised.power_failures, 12u);
    EXPECT_LT(supervised.power_failures, unsupervised.power_failures);

    // The collateral benefit: the still-feasible beacon keeps running
    // because the device stops burning full recharges on the burst.
    EXPECT_GT(supervised.eventStats("beacon").captureRate(),
              unsupervised.eventStats("beacon").captureRate());

    // Every decision is in the exported trace.
    if (telemetry::kEnabled) {
        const std::string jsonl = traceText(sup_tel);
        EXPECT_TRUE(traceHasKind(jsonl, "task_retry"));
        EXPECT_TRUE(traceHasKind(jsonl, "task_shed"));
        EXPECT_TRUE(traceHasKind(jsonl, "task_readmit"));
        EXPECT_TRUE(traceHasKind(jsonl, "margin_update"));
    }
}

/**
 * Randomized sweep: every generated app scenario re-run with a seeded
 * drift-only disturbance plan, supervised vs unsupervised, policies
 * profiled on the pristine part. Per-seed outcomes vary (mild drift
 * changes nothing; brutal drift demotes tasks), so the assertions are
 * aggregate: supervision never costs capture overall, never adds
 * brown-outs overall, and the drift detector actually fires somewhere
 * in the sweep.
 */
struct DriftVerdict
{
    std::uint64_t seed = 0;
    unsigned sup_captured = 0;
    unsigned unsup_captured = 0;
    unsigned arrived = 0;
    unsigned sup_failures = 0;
    unsigned unsup_failures = 0;
    std::uint64_t drift_alarms = 0;
    std::uint64_t sheds = 0;
};

DriftVerdict
runDriftScenario(std::uint64_t seed)
{
    DriftVerdict v;
    v.seed = seed;
    const fault::AppScenario scenario = fault::randomAppScenario(seed);

    // Replace the scenario's disturbance plan with pure drift, drawn
    // from the same seed stream family the differential harness uses.
    fault::FaultKnobs knobs;
    knobs.drift_probability = 1.0;
    util::Rng plan_rng(seed ^ 0x9e3779b9);
    fault::FaultPlan plan;
    plan.degradation =
        fault::randomPlan(plan_rng, scenario.duration, knobs).degradation;

    // Pristine profile — the drift is exactly what the profile does
    // not know about, and what the supervisor exists to absorb.
    sched::CulpeoPolicy policy(/*use_uarch=*/true);
    policy.initialize(scenario.app);

    {
        fault::FaultInjector injector(plan, seed);
        sched::Supervisor supervisor;
        const sched::TrialResult result = TrialBuilder()
                                              .app(scenario.app)
                                              .policy(policy)
                                              .duration(scenario.duration)
                                              .seed(seed)
                                              .faults(&injector)
                                              .supervisor(&supervisor)
                                              .run();
        for (const auto &stats : result.per_event) {
            v.sup_captured += stats.captured;
            v.arrived += stats.arrived;
        }
        v.sup_failures = result.power_failures;
        v.drift_alarms = supervisor.stats().drift_alarms;
        v.sheds = supervisor.stats().sheds;
    }
    {
        fault::FaultInjector injector(plan, seed);
        const sched::TrialResult result = TrialBuilder()
                                              .app(scenario.app)
                                              .policy(policy)
                                              .duration(scenario.duration)
                                              .seed(seed)
                                              .faults(&injector)
                                              .run();
        for (const auto &stats : result.per_event)
            v.unsup_captured += stats.captured;
        v.unsup_failures = result.power_failures;
    }
    return v;
}

TEST(DriftSupervisor, RandomizedDriftSweepNeverRegressesUnderSupervision)
{
    const unsigned trials =
        std::max(4u, envUnsigned("CULPEO_FUZZ_ITERS", 200) / 40);
    const std::uint64_t base = baseSeed() + 0x4000000;

    const std::vector<DriftVerdict> verdicts =
        util::ThreadPool::shared().parallelMap(seedRange(base, trials),
                                               runDriftScenario);

    unsigned sup_captured = 0;
    unsigned unsup_captured = 0;
    unsigned sup_failures = 0;
    unsigned unsup_failures = 0;
    std::uint64_t drift_alarms = 0;
    for (const DriftVerdict &v : verdicts) {
        SCOPED_TRACE(seedHint(v.seed));
        sup_captured += v.sup_captured;
        unsup_captured += v.unsup_captured;
        sup_failures += v.sup_failures;
        unsup_failures += v.unsup_failures;
        drift_alarms += v.drift_alarms;
    }

    RecordProperty("sup_captured", int(sup_captured));
    RecordProperty("unsup_captured", int(unsup_captured));
    RecordProperty("sup_failures", int(sup_failures));
    RecordProperty("unsup_failures", int(unsup_failures));
    if (!seedOverridden()) {
        // Aggregate only: one seed can shed a borderline task that
        // scrapes by unsupervised, but over the sweep supervision must
        // pay for itself.
        EXPECT_LE(sup_failures, unsup_failures);
        EXPECT_GE(10 * sup_captured, 9 * unsup_captured)
            << "supervision cost more than 10% of captured events";
        EXPECT_GE(drift_alarms, 1u)
            << "no scenario drifted far enough to raise an alarm";
    }
}

} // namespace
