/**
 * @file
 * Differential fuzz lane for the online-adapting policies: seeded
 * scenarios sweep harvest level, buffer scale, and arrival seed over
 * the app library, and every committed dispatch made by
 * EnergyAdaptiveBufferPolicy and AdaptiveWorkloadPolicy runs under the
 * fault::InvariantMonitor — a brown-out inside a commitment window
 * whose admission premise was intact is a safety violation (Theorem 1
 * generalized to runtime-adapted thresholds).
 *
 * Same execution model as test_differential.cpp: pure per-seed verdict
 * computations on the shared pool, assertions replayed serially;
 * CULPEO_FUZZ_SEED / CULPEO_FUZZ_ITERS replay and scale the sweep.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "fault/invariants.hpp"
#include "sched/policy.hpp"
#include "sched/policy_adaptive.hpp"
#include "sched/trial.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    const unsigned long parsed = std::strtoul(value, nullptr, 10);
    return parsed == 0 ? fallback : unsigned(parsed);
}

std::uint64_t
baseSeed()
{
    const char *value = std::getenv("CULPEO_FUZZ_SEED");
    if (value == nullptr || *value == '\0')
        return 20220101;
    return std::strtoull(value, nullptr, 10);
}

std::string
seedHint(std::uint64_t seed)
{
    return "replay with CULPEO_FUZZ_SEED=" + std::to_string(seed) +
           " CULPEO_FUZZ_ITERS=1";
}

std::vector<std::uint64_t>
seedRange(std::uint64_t base, unsigned count)
{
    std::vector<std::uint64_t> seeds(count);
    std::iota(seeds.begin(), seeds.end(), base);
    return seeds;
}

/** One seeded scenario: app variant + conditions drawn from the seed. */
sched::AppSpec
scenarioApp(std::uint64_t seed)
{
    util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    sched::AppSpec app = rng.uniform() < 0.5
        ? apps::periodicSensing(Seconds(rng.uniform(4.0, 9.0)))
        : apps::responsiveReporting(Seconds(rng.uniform(20.0, 50.0)));
    // Harvest from scarce to rich around the profiled level, so the
    // EAB policy exercises both shrink and grow decisions and the
    // workload estimator sees drift resets.
    app.harvest = app.harvest * rng.uniform(0.45, 2.0);
    // Deployment spread on the buffer, as the fleet sampler applies.
    auto &cap = app.power.capacitor;
    cap.capacitance = cap.capacitance * rng.uniform(0.7, 1.3);
    const double esr_scale = rng.uniform(0.9, 1.5);
    cap.series_esr = cap.series_esr * esr_scale;
    cap.bulk_resistance = cap.bulk_resistance * esr_scale;
    cap.surface_resistance = cap.surface_resistance * esr_scale;
    return app;
}

struct PolicyVerdict
{
    std::uint64_t seed = 0;
    bool clean = false;
    std::string report;
    unsigned commits = 0;
    unsigned captured = 0;
};

PolicyVerdict
runScenario(std::uint64_t seed, const std::string &policy_name)
{
    PolicyVerdict v;
    v.seed = seed;
    const sched::AppSpec app = scenarioApp(seed);

    std::unique_ptr<sched::Policy> policy =
        sched::makePolicy(policy_name);
    policy->initialize(app);

    fault::InvariantMonitor monitor(app.power.monitor.voff);
    const sched::TrialResult result =
        TrialBuilder()
            .app(app)
            .policy(*policy)
            .duration(Seconds(45.0))
            .seed(seed)
            .observer(&monitor)
            .run();

    v.clean = monitor.clean();
    if (!v.clean)
        v.report = monitor.report(seed);
    v.commits = monitor.commits();
    for (const auto &stats : result.per_event)
        v.captured += stats.captured;
    return v;
}

void
runLane(const std::string &policy_name, std::uint64_t salt)
{
    const unsigned trials =
        std::max(8u, envUnsigned("CULPEO_FUZZ_ITERS", 200) / 8);
    const std::uint64_t base = baseSeed() + salt;

    const std::vector<PolicyVerdict> verdicts =
        util::ThreadPool::shared().parallelMap(
            seedRange(base, trials), [&](std::uint64_t seed) {
                return runScenario(seed, policy_name);
            });

    unsigned total_commits = 0;
    unsigned total_captured = 0;
    for (const PolicyVerdict &v : verdicts) {
        SCOPED_TRACE(seedHint(v.seed));
        EXPECT_TRUE(v.clean) << v.report;
        total_commits += v.commits;
        total_captured += v.captured;
    }
    ::testing::Test::RecordProperty("total_commits", int(total_commits));
    ::testing::Test::RecordProperty("total_captured",
                                    int(total_captured));
    EXPECT_GT(total_commits, 0u)
        << "no scenario exercised a committed dispatch";
    EXPECT_GT(total_captured, 0u)
        << "no scenario captured a single event";
}

TEST(FuzzPolicyMatrix, EnergyAdaptiveBufferStaysBrownoutSafe)
{
    // Every bank configuration's thresholds come from a per-config
    // Culpeo profile, so resizing must never admit an unsafe dispatch.
    runLane("eab", 0x3000000);
}

TEST(FuzzPolicyMatrix, AdaptiveWorkloadStaysBrownoutSafe)
{
    // Unknown tasks start from Vhigh and estimates carry a safety
    // margin; convergence must stay on the safe side throughout.
    runLane("adaptive", 0x4000000);
}

} // namespace
