/**
 * @file
 * Seeded replay regression: a specific scenario seed, found by the
 * randomized differential sweep, is pinned here so the exact failure
 * mode it exposed — CatNap's energy-only estimate admitting a pulsed
 * task below its true requirement and browning out, while both Culpeo
 * estimators stay safe — is re-verified on every run. This also guards
 * the generator: if scenario derivation from a seed ever changes, the
 * pinned expectations break loudly instead of silently shifting the
 * whole fuzz corpus.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/api.hpp"
#include "core/vsafe_pg.hpp"
#include "fault/injector.hpp"
#include "fault/scenario.hpp"
#include "harness/baselines.hpp"
#include "harness/ground_truth.hpp"
#include "harness/profiling.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;

/** Found by the VsafeAdmissionsSurviveGroundTruth sweep (seed base
 * 20220101): CatNap lands well below the true Vsafe and browns out. */
constexpr std::uint64_t kKnownFailingSeed = 20220103;

TEST(SeedRegression, ScenarioDerivationIsStable)
{
    const fault::TaskScenario scenario =
        fault::randomTaskScenario(kKnownFailingSeed);
    const fault::TaskScenario replay =
        fault::randomTaskScenario(kKnownFailingSeed);
    EXPECT_DOUBLE_EQ(scenario.config.capacitor.capacitance.value(),
                     replay.config.capacitor.capacitance.value());
    EXPECT_DOUBLE_EQ(scenario.config.capacitor.series_esr.value(),
                     replay.config.capacitor.series_esr.value());
    ASSERT_EQ(scenario.profile.segments().size(),
              replay.profile.segments().size());
    for (std::size_t i = 0; i < scenario.profile.segments().size();
         ++i) {
        EXPECT_DOUBLE_EQ(
            scenario.profile.segments()[i].current.value(),
            replay.profile.segments()[i].current.value());
        EXPECT_DOUBLE_EQ(
            scenario.profile.segments()[i].duration.value(),
            replay.profile.segments()[i].duration.value());
    }
}

TEST(SeedRegression, CatnapBrownsOutWhereCulpeoSurvives)
{
    const fault::TaskScenario scenario =
        fault::randomTaskScenario(kKnownFailingSeed);
    const harness::GroundTruth truth =
        harness::findTrueVsafe(scenario.config, scenario.profile);
    ASSERT_TRUE(truth.feasible);

    const double vhigh = scenario.config.monitor.vhigh.value();
    const double tolerance =
        0.02 * (vhigh - scenario.config.monitor.voff.value());
    const auto admitAt = [&](Volts vsafe) {
        return Volts(std::min(vsafe.value() + 20e-3, vhigh));
    };

    // The energy-only estimate is far below the true requirement —
    // outside even the Figure 10 tolerance band — and the admission it
    // implies actually browns out in simulation.
    const harness::BaselineEstimates baselines =
        harness::estimateBaselines(scenario.config, scenario.profile);
    EXPECT_LT(baselines.catnap_measured.value(),
              truth.vsafe.value() - tolerance);
    EXPECT_FALSE(harness::completesFrom(scenario.config,
                                        baselines.catnap_measured,
                                        scenario.profile));

    // Both Culpeo estimators stay inside the tolerance band, and their
    // guard-banded admissions complete.
    const core::PgResult pg = core::culpeoPg(
        scenario.profile, core::modelFromConfig(scenario.config));
    ASSERT_LE(pg.vsafe.value(), vhigh);
    EXPECT_GE(pg.vsafe.value(), truth.vsafe.value() - tolerance);
    EXPECT_TRUE(harness::completesFrom(
        scenario.config, admitAt(pg.vsafe), scenario.profile));

    core::Culpeo culpeo(core::modelFromConfig(scenario.config),
                        std::make_unique<core::IsrProfiler>());
    const harness::ProfileOutcome outcome = harness::profileTaskFrom(
        scenario.config, scenario.config.monitor.vhigh, culpeo, 1,
        scenario.profile);
    ASSERT_TRUE(outcome.stored);
    EXPECT_GE(culpeo.getVsafe(1).value(),
              truth.vsafe.value() - tolerance);
    EXPECT_TRUE(harness::completesFrom(scenario.config,
                                       admitAt(culpeo.getVsafe(1)),
                                       scenario.profile));
}

TEST(SeedRegression, FaultPlanReplayIsBitIdentical)
{
    util::Rng rng_a(kKnownFailingSeed);
    util::Rng rng_b(kKnownFailingSeed);
    const fault::FaultPlan plan_a =
        fault::randomPlan(rng_a, Seconds(8.0));
    const fault::FaultPlan plan_b =
        fault::randomPlan(rng_b, Seconds(8.0));
    EXPECT_EQ(plan_a.summary(), plan_b.summary());

    fault::FaultInjector injector_a(plan_a, kKnownFailingSeed);
    fault::FaultInjector injector_b(plan_b, kKnownFailingSeed);
    for (int i = 0; i < 200; ++i) {
        const Seconds t(i * 0.04);
        const sim::FaultActions a =
            injector_a.onStep(t, Seconds(1e-3));
        const sim::FaultActions b =
            injector_b.onStep(t, Seconds(1e-3));
        EXPECT_DOUBLE_EQ(a.harvest_scale, b.harvest_scale);
        EXPECT_DOUBLE_EQ(a.extra_leakage.value(),
                         b.extra_leakage.value());
        EXPECT_EQ(a.force_brownout, b.force_brownout);
        EXPECT_EQ(a.apply_aging, b.apply_aging);
        EXPECT_DOUBLE_EQ(
            injector_a.perturbReading(Volts(2.3)).value(),
            injector_b.perturbReading(Volts(2.3)).value());
    }
    EXPECT_EQ(injector_a.firedBrownouts(), injector_b.firedBrownouts());
}

} // namespace
