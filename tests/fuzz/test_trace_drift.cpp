/**
 * @file
 * Drift-supervisor differential under a *recorded* harvest trace: the
 * solar-diurnal field is captured to a columnar .ctrace file with
 * env::recordField, decoded back through the defensive reader, and the
 * lifetime-drift acceptance scenario replays on top of the decoded
 * env::TraceField instead of a live generator. The supervisor must hit
 * the same bound it hits under the analytic field (>= 90% supervised
 * capture, zero brown-outs) while the unsupervised policy collapses —
 * proving the ingestion path is a faithful environment, not just a
 * parser that round-trips bytes.
 *
 * Same knobs as the other fuzz harnesses: CULPEO_FUZZ_SEED /
 * CULPEO_FUZZ_ITERS replay and scale the randomized sweep.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "env/field.hpp"
#include "env/trace.hpp"
#include "env/trace_reader.hpp"
#include "fault/injector.hpp"
#include "fault/invariants.hpp"
#include "load/library.hpp"
#include "sched/policy.hpp"
#include "sched/supervisor.hpp"
#include "sched/trial.hpp"
#include "util/parallel.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    const unsigned long parsed = std::strtoul(value, nullptr, 10);
    return parsed == 0 ? fallback : unsigned(parsed);
}

std::uint64_t
baseSeed()
{
    const char *value = std::getenv("CULPEO_FUZZ_SEED");
    if (value == nullptr || *value == '\0')
        return 20220101; // Fixed default: tier-1 is deterministic.
    return std::strtoull(value, nullptr, 10);
}

/**
 * A morning of harvest sized like the constant 5 mW the analytic
 * acceptance scenario uses: the 250 s trial sits on the rising half of
 * a 1000 s "day", so irradiance sweeps 0.7 -> 1.0 of an 8 mW peak and
 * mild clouds modulate on a 5 s grid. The 2 Hz recording rate divides
 * the piece length, so recordField captures the field exactly.
 */
env::SolarConfig
solarMorning(std::uint64_t seed)
{
    env::SolarConfig config;
    config.peak = Watts(8e-3);
    config.day_length = Seconds(1000.0);
    config.daylight_fraction = 1.0;
    config.dawn_offset = Seconds(250.0);
    config.sample_period = Seconds(5.0);
    config.cloud_depth = 0.15;
    config.shading_depth = 0.0;
    config.seed = seed;
    return config;
}

/** Same app/plan as test_drift_supervisor.cpp's acceptance scenario. */
sched::AppSpec
driftApp()
{
    sched::AppSpec app;
    app.name = "lifetime-drift";
    app.power = sim::capybaraConfig();
    app.harvest = 5.0_mW; // Overridden by .environment() below.

    sched::EventSpec sense;
    sense.name = "sense";
    sense.arrival = sched::Arrival::Periodic;
    sense.interval = 2.5_s;
    sense.deadline = 2.5_s;
    sense.chain = {{1, "sense", load::uniform(20.0_mA, 20.0_ms)}};
    app.events.push_back(sense);

    app.background =
        sched::SchedTask{9, "drain", load::uniform(10.0_mA, 50.0_ms)};
    app.background_period = 0.05_s;
    return app;
}

/** Slow wear over most of the trial: ESR up 2.2x, capacitance -12%. */
fault::FaultPlan
lifetimeDriftPlan()
{
    fault::FaultPlan plan;
    fault::DegradationModel drift;
    drift.shape = fault::DriftShape::Linear;
    drift.onset = 20.0_s;
    drift.ramp = 200.0_s;
    drift.esr_multiplier_end = 2.2;
    drift.capacitance_fraction_end = 0.88;
    plan.degradation = drift;
    return plan;
}

/** Record @p field at the origin to a temp .ctrace; fatal-checked. */
std::string
recordToDisk(const env::HarvestField &field, std::uint64_t tag)
{
    const std::string path = ::testing::TempDir() +
                             "culpeo_drift_trace_" +
                             std::to_string(tag) + ".ctrace";
    const env::TraceData data = env::recordField(
        field, env::Position{}, Seconds(260.0), Hertz(2.0));
    const auto written = env::writeTrace(path, data);
    EXPECT_TRUE(written.ok());
    return path;
}

struct TraceDriftVerdict
{
    std::uint64_t seed = 0;
    unsigned arrived = 0;
    unsigned sup_captured = 0;
    unsigned unsup_captured = 0;
    unsigned sup_failures = 0;
    unsigned unsup_failures = 0;
    std::uint64_t drift_alarms = 0;
    bool decode_clean = false;
};

/**
 * One recorded-replay differential: record the seeded solar morning,
 * decode it back, run the drift scenario supervised and unsupervised
 * on the decoded field.
 */
TraceDriftVerdict
runTraceDriftScenario(std::uint64_t seed)
{
    TraceDriftVerdict v;
    v.seed = seed;

    const env::SolarDiurnalField solar(solarMorning(seed));
    const std::string path = recordToDisk(solar, seed);
    util::Expected<env::TraceField, env::TraceError> replay =
        env::TraceField::open(path);
    if (!replay.ok())
        return v; // decode_clean stays false; the test flags it.
    v.decode_clean = !replay->reader().stats().corrupted();

    const sched::AppSpec app = driftApp();
    const fault::FaultPlan plan = lifetimeDriftPlan();
    const Seconds duration = 250.0_s;

    sched::CulpeoPolicy policy(/*use_uarch=*/true);
    policy.initialize(app); // Pristine profile: drift makes it stale.

    {
        fault::FaultInjector injector(plan, /*noise_seed=*/1);
        sched::Supervisor supervisor;
        const sched::TrialResult result = TrialBuilder()
                                              .app(app)
                                              .policy(policy)
                                              .duration(duration)
                                              .seed(1)
                                              .environment(*replay)
                                              .faults(&injector)
                                              .supervisor(&supervisor)
                                              .run();
        const sched::EventTypeStats &stats = result.eventStats("sense");
        v.arrived = stats.arrived;
        v.sup_captured = stats.captured;
        v.sup_failures = result.power_failures;
        v.drift_alarms = supervisor.stats().drift_alarms;
    }
    {
        fault::FaultInjector injector(plan, /*noise_seed=*/1);
        const sched::TrialResult result = TrialBuilder()
                                              .app(app)
                                              .policy(policy)
                                              .duration(duration)
                                              .seed(1)
                                              .environment(*replay)
                                              .faults(&injector)
                                              .run();
        v.unsup_captured = result.eventStats("sense").captured;
        v.unsup_failures = result.power_failures;
    }
    std::remove(path.c_str());
    return v;
}

/**
 * The acceptance scenario of DESIGN.md §18: the ISSUE's >= 90%
 * supervised-capture bound must survive the round trip through the
 * on-disk trace format. Also pins the recording's fidelity: the
 * decoded field returns the generator's power bit-for-bit at every
 * recorded instant.
 */
TEST(TraceDrift, SupervisedHitsCaptureBoundUnderRecordedSolarTrace)
{
    const env::SolarDiurnalField solar(solarMorning(baseSeed()));
    const std::string path = recordToDisk(solar, 0);
    util::Expected<env::TraceField, env::TraceError> replay =
        env::TraceField::open(path);
    ASSERT_TRUE(replay.ok()) << replay.error().message();
    EXPECT_FALSE(replay->reader().stats().corrupted());

    // Replay fidelity: the decoded trace is the generator, not an
    // approximation of it (2 Hz divides the 5 s piece grid).
    for (unsigned k = 0; k < 520; k += 7) {
        const Seconds t(double(k) * 0.5);
        EXPECT_EQ(replay->powerAt(env::Position{}, t).value(),
                  solar.powerAt(env::Position{}, t).value())
            << "t=" << t.value();
    }

    const sched::AppSpec app = driftApp();
    const fault::FaultPlan plan = lifetimeDriftPlan();
    const Seconds duration = 250.0_s;

    sched::CulpeoPolicy policy(/*use_uarch=*/true);
    policy.initialize(app);

    fault::FaultInjector sup_injector(plan, 1);
    fault::InvariantMonitor sup_monitor(app.power.monitor.voff);
    sched::Supervisor supervisor;
    const sched::TrialResult supervised = TrialBuilder()
                                              .app(app)
                                              .policy(policy)
                                              .duration(duration)
                                              .seed(1)
                                              .environment(*replay)
                                              .faults(&sup_injector)
                                              .observer(&sup_monitor)
                                              .supervisor(&supervisor)
                                              .run();

    fault::FaultInjector unsup_injector(plan, 1);
    fault::InvariantMonitor unsup_monitor(app.power.monitor.voff);
    const sched::TrialResult unsupervised = TrialBuilder()
                                                .app(app)
                                                .policy(policy)
                                                .duration(duration)
                                                .seed(1)
                                                .environment(*replay)
                                                .faults(&unsup_injector)
                                                .observer(&unsup_monitor)
                                                .run();

    // Unsupervised the stale profile still collapses under the
    // recorded sky: brown-out cycles shed most of the event stream.
    EXPECT_FALSE(unsup_monitor.clean())
        << "drift never produced an unsafe dispatch under the trace; "
           "the scenario lost its discriminating power";
    EXPECT_GE(unsupervised.power_failures, 3u);
    EXPECT_LT(unsupervised.eventStats("sense").captureRate(), 0.75);

    // Supervised: the ISSUE's bound, now end-to-end through the file.
    EXPECT_TRUE(sup_monitor.clean()) << sup_monitor.report(1);
    EXPECT_EQ(supervised.power_failures, 0u);
    EXPECT_GE(supervised.eventStats("sense").captureRate(), 0.9);
    EXPECT_GE(supervisor.stats().drift_alarms, 1u);

    std::remove(path.c_str());
}

/**
 * Randomized sweep over cloud seeds: every recorded sky differs (the
 * cloud field re-draws per seed) but the differential verdict must
 * not — supervision holds the bound on each of them, and collapses
 * without it.
 */
TEST(TraceDrift, CaptureBoundHoldsAcrossRecordedSkies)
{
    const unsigned trials =
        std::max(3u, envUnsigned("CULPEO_FUZZ_ITERS", 200) / 64);
    std::vector<std::uint64_t> seeds(trials);
    for (unsigned i = 0; i < trials; ++i)
        seeds[i] = baseSeed() + 0x5000000 + i;

    const std::vector<TraceDriftVerdict> verdicts =
        util::ThreadPool::shared().parallelMap(seeds,
                                               runTraceDriftScenario);

    for (const TraceDriftVerdict &v : verdicts) {
        SCOPED_TRACE("field seed " + std::to_string(v.seed));
        ASSERT_TRUE(v.decode_clean)
            << "a freshly recorded trace decoded dirty";
        ASSERT_GT(v.arrived, 0u);
        EXPECT_GE(10 * v.sup_captured, 9 * v.arrived)
            << v.sup_captured << "/" << v.arrived;
        EXPECT_EQ(v.sup_failures, 0u);
        EXPECT_GE(v.drift_alarms, 1u);
        EXPECT_LT(4 * v.unsup_captured, 3 * v.arrived)
            << v.unsup_captured << "/" << v.arrived;
        EXPECT_GT(v.unsup_failures, v.sup_failures);
    }
}

} // namespace
