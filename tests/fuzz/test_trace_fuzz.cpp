/**
 * @file
 * Trace-corruption fuzzer (DESIGN.md §18): seeded random byte-level
 * mutations of valid trace files, decoded under all three recovery
 * modes. The decoder's contract under arbitrary input:
 *
 *  1. it never crashes and never reads out of bounds (the ASan/UBSan
 *     CI legs make this bite);
 *  2. every failure classifies into the TraceErrorCode taxonomy;
 *  3. it lands in the declared recovery mode: Strict never serves a
 *     corrupted view, Clamp/Skip only refuse structurally-unreadable
 *     files, and every recovery action is visible in TraceStats and
 *     the trace.corruption telemetry counter.
 *
 * Seeded and replayable: CULPEO_TRACE_FUZZ_SEED pins the mutation
 * stream, CULPEO_TRACE_FUZZ_ITERS scales the budget (default 500
 * mutations across the modes; CI smoke runs the same default).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "env/field.hpp"
#include "env/trace.hpp"
#include "env/trace_reader.hpp"
#include "telemetry/telemetry.hpp"
#include "util/random.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;

std::uint64_t
envUnsigned(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0')
        return fallback;
    return std::strtoull(value, nullptr, 10);
}

std::uint64_t
fuzzSeed()
{
    return envUnsigned("CULPEO_TRACE_FUZZ_SEED", 20260809);
}

std::uint64_t
fuzzIters()
{
    return envUnsigned("CULPEO_TRACE_FUZZ_ITERS", 500);
}

/** A small valid trace to mutate (a few blocks, varied values). */
std::string
pristineBytes(util::Rng &rng)
{
    env::TraceData data;
    data.sample_rate = Hertz(4.0);
    const std::size_t n = 24 + std::size_t(rng.uniformInt(72));
    double t = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        t += rng.uniform(0.05, 0.5);
        data.time_s.push_back(t);
        data.current_a.push_back(rng.uniform(0.0, 20e-3));
        data.voltage_v.push_back(rng.uniform(0.5, 5.0));
    }
    env::TraceWriteOptions options;
    options.block_samples = 8 + std::uint32_t(rng.uniformInt(17));
    const std::string path =
        testing::TempDir() + "trace_fuzz_pristine.ctrace";
    EXPECT_TRUE(env::writeTrace(path, data, options).ok());
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    EXPECT_FALSE(bytes.empty());
    return bytes;
}

/** Apply 1..4 random structure-agnostic mutations. */
void
mutate(std::string &bytes, util::Rng &rng)
{
    const int edits = 1 + int(rng.uniformInt(4));
    for (int e = 0; e < edits; ++e) {
        if (bytes.empty())
            return;
        switch (rng.uniformInt(6)) {
        case 0: // Flip one bit.
            bytes[rng.uniformInt(bytes.size())] ^=
                char(1U << rng.uniformInt(8));
            break;
        case 1: // Overwrite one byte.
            bytes[rng.uniformInt(bytes.size())] =
                char(rng.uniformInt(256));
            break;
        case 2: // Truncate.
            bytes.resize(rng.uniformInt(bytes.size() + 1));
            break;
        case 3: // Append garbage.
        {
            const std::size_t extra = 1 + rng.uniformInt(64);
            for (std::size_t i = 0; i < extra; ++i)
                bytes.push_back(char(rng.uniformInt(256)));
            break;
        }
        case 4: // Zero a run.
        {
            const std::size_t start = rng.uniformInt(bytes.size());
            const std::size_t len =
                std::min<std::size_t>(1 + rng.uniformInt(32),
                                      bytes.size() - start);
            for (std::size_t i = 0; i < len; ++i)
                bytes[start + i] = '\0';
            break;
        }
        default: // Splice a slice of the file over another offset.
        {
            const std::size_t src = rng.uniformInt(bytes.size());
            const std::size_t dst = rng.uniformInt(bytes.size());
            const std::size_t len = std::min(
                {std::size_t(1 + rng.uniformInt(48)),
                 bytes.size() - src, bytes.size() - dst});
            bytes.replace(dst, len, bytes, src, len);
            break;
        }
        }
    }
}

bool
headerLevel(env::TraceErrorCode code)
{
    switch (code) {
    case env::TraceErrorCode::Io:
    case env::TraceErrorCode::BadMagic:
    case env::TraceErrorCode::BadVersion:
    case env::TraceErrorCode::HeaderCorrupt:
    case env::TraceErrorCode::EmptyTrace:
        return true;
    case env::TraceErrorCode::Truncated:
        // Recoverable when block-local; terminal when the header
        // itself is cut short. The caller checks the offset.
        return false;
    default:
        return false;
    }
}

bool
knownCode(env::TraceErrorCode code)
{
    switch (code) {
    case env::TraceErrorCode::Io:
    case env::TraceErrorCode::Truncated:
    case env::TraceErrorCode::BadMagic:
    case env::TraceErrorCode::BadVersion:
    case env::TraceErrorCode::HeaderCorrupt:
    case env::TraceErrorCode::ZeroLengthBlock:
    case env::TraceErrorCode::BlockCrcMismatch:
    case env::TraceErrorCode::NonFiniteSample:
    case env::TraceErrorCode::NonMonotonicTime:
    case env::TraceErrorCode::DuplicateTime:
    case env::TraceErrorCode::OutOfRangeCurrent:
    case env::TraceErrorCode::OutOfRangeVoltage:
    case env::TraceErrorCode::TrailingData:
    case env::TraceErrorCode::EmptyTrace:
        return true;
    }
    return false;
}

void
exerciseSurvivor(const env::TraceReader &reader)
{
    // Touch every decoded sample and a spread of time lookups so the
    // sanitizers walk the whole recovered view.
    double prev = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < reader.size(); ++i) {
        const env::TraceReader::Sample s = reader.sampleAt(i);
        ASSERT_GT(s.time_s, prev) << "decoded times must be ordered";
        ASSERT_TRUE(std::isfinite(s.time_s));
        ASSERT_TRUE(std::isfinite(s.power_w()));
        prev = s.time_s;
    }
    const double t0 = reader.timeAt(0);
    const double t1 = reader.timeAt(reader.size() - 1);
    for (int k = 0; k <= 16; ++k) {
        const double t = t0 - 1.0 + (t1 - t0 + 2.0) * double(k) / 16.0;
        const std::size_t index = reader.indexFor(t);
        ASSERT_LT(index, reader.size());
        if (t >= t0) {
            ASSERT_LE(reader.timeAt(index), t);
        }
    }
}

TEST(TraceFuzz, MutatedFilesAlwaysLandInTheDeclaredRecoveryMode)
{
    const std::uint64_t iters = fuzzIters();
    util::Rng rng(fuzzSeed());
    const std::string path =
        testing::TempDir() + "trace_fuzz_mutant.ctrace";
    const env::RecoveryMode modes[] = {env::RecoveryMode::Strict,
                                       env::RecoveryMode::Clamp,
                                       env::RecoveryMode::Skip};
    std::uint64_t survived = 0;
    std::uint64_t refused = 0;
    std::string pristine = pristineBytes(rng);
    for (std::uint64_t iter = 0; iter < iters; ++iter) {
        if (iter % 64 == 0 && iter != 0)
            pristine = pristineBytes(rng); // Vary the substrate too.
        std::string bytes = pristine;
        mutate(bytes, rng);
        {
            std::ofstream out(path,
                              std::ios::binary | std::ios::trunc);
            ASSERT_TRUE(out.is_open());
            out.write(bytes.data(), std::streamsize(bytes.size()));
        }
        const env::RecoveryMode mode = modes[iter % 3];
        telemetry::Telemetry sink;
        env::TraceReadOptions options;
        options.mode = mode;
        options.telemetry = &sink;
        const util::Expected<env::TraceReader, env::TraceError> r =
            env::TraceReader::open(path, options);
        const std::string where = "iter " + std::to_string(iter) +
                                  " mode " +
                                  env::recoveryModeName(mode);
        if (!r.ok()) {
            ++refused;
            const env::TraceError &error = r.error();
            ASSERT_TRUE(knownCode(error.code))
                << where << ": unclassified error";
            if (mode != env::RecoveryMode::Strict) {
                // Recovery modes only refuse structural damage: a
                // header-level code, or a file too short to hold one.
                ASSERT_TRUE(headerLevel(error.code) ||
                            (error.code ==
                                 env::TraceErrorCode::Truncated &&
                             bytes.size() < env::kTraceHeaderSize))
                    << where << ": refused with " << error.message();
            }
            continue;
        }
        ++survived;
        ASSERT_GT(r->size(), 0U) << where;
        if (mode == env::RecoveryMode::Strict) {
            // A strict open that succeeds must be a clean decode.
            ASSERT_FALSE(r->stats().corrupted()) << where;
        }
        // Stats, telemetry, and the error list must agree on whether
        // anything was repaired.
        const bool corrupted = r->stats().corrupted();
        EXPECT_EQ(!r->stats().errors.empty(), corrupted) << where;
        if (telemetry::kEnabled) {
            const std::uint64_t counted =
                sink.registry()
                    .counter(telemetry::names::kTraceCorruption)
                    .value();
            EXPECT_EQ(counted != 0, corrupted) << where;
        }
        exerciseSurvivor(*r);
    }
    // The mutator must exercise both outcomes, or the suite is
    // fuzzing the wrong thing.
    EXPECT_GT(refused, 0U);
    EXPECT_GT(survived, 0U);
    ASSERT_EQ(survived + refused, iters);
}

TEST(TraceFuzz, SurvivingTracesReplayThroughTraceFieldWithoutFaults)
{
    // A lighter pass that pushes survivors through the HarvestField
    // seam: powerAt/constantUntil over the whole span must stay
    // finite and ordered whatever the mutation did.
    const std::uint64_t iters = std::max<std::uint64_t>(
        fuzzIters() / 5, 20);
    util::Rng rng(fuzzSeed() + 1);
    const std::string path =
        testing::TempDir() + "trace_fuzz_field.ctrace";
    const std::string pristine = pristineBytes(rng);
    std::uint64_t replayed = 0;
    for (std::uint64_t iter = 0; iter < iters; ++iter) {
        std::string bytes = pristine;
        mutate(bytes, rng);
        {
            std::ofstream out(path,
                              std::ios::binary | std::ios::trunc);
            ASSERT_TRUE(out.is_open());
            out.write(bytes.data(), std::streamsize(bytes.size()));
        }
        env::TraceReadOptions options;
        options.mode = iter % 2 == 0 ? env::RecoveryMode::Clamp
                                     : env::RecoveryMode::Skip;
        const util::Expected<env::TraceField, env::TraceError> field =
            env::TraceField::open(path, options);
        if (!field.ok())
            continue;
        ++replayed;
        const env::Position pos{};
        const double end = field->endTime().value();
        double t = -0.5;
        int hops = 0;
        while (t < end && hops < 4096) {
            const double power = field->powerAt(pos, Seconds(t)).value();
            ASSERT_TRUE(std::isfinite(power));
            ASSERT_GE(power, 0.0);
            const double until =
                field->constantUntil(pos, Seconds(t)).value();
            ASSERT_GT(until, t)
                << "constantUntil must make progress (iter " << iter
                << ")";
            t = until;
            ++hops;
        }
        ASSERT_LT(hops, 4096) << "piece iteration wedged";
    }
    EXPECT_GT(replayed, 0U);
}

} // namespace
