/**
 * @file
 * Tests for the policy bake-off matrix: cell coverage, the paper's
 * Culpeo >= CatNap capture ordering, deterministic ranked output, the
 * batch/scalar routing split, and the CSV/JSONL scorecard format.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "apps/apps.hpp"
#include "harness/bakeoff.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;

/** Small two-policy matrix that finishes in well under a second. */
harness::BakeoffMatrix
smokeMatrix(const sched::AppSpec &ps, const sched::AppSpec &rr)
{
    harness::BakeoffMatrix matrix;
    matrix.policies = {"culpeo", "catnap"};
    matrix.buffers = {{"nominal", 1.0, 1.0}, {"half-cap", 0.5, 1.0}};
    matrix.loads = {{"periodic-sensing", &ps},
                    {"responsive-reporting", &rr}};
    matrix.environments = {{"steady", nullptr, {}, 1.0},
                           {"weak", nullptr, {}, 0.55}};
    matrix.duration = Seconds(60.0);
    matrix.trials = 2;
    return matrix;
}

TEST(Bakeoff, CoversEveryCellAndRanksThem)
{
    const sched::AppSpec ps = apps::periodicSensing();
    const sched::AppSpec rr = apps::responsiveReporting();
    const harness::BakeoffResult result =
        harness::runBakeoff(smokeMatrix(ps, rr));

    ASSERT_EQ(result.cells.size(), 2u * 2u * 2u * 2u);
    for (std::size_t i = 0; i < result.cells.size(); ++i) {
        const harness::BakeoffCell &c = result.cells[i];
        EXPECT_EQ(c.rank, i + 1);
        EXPECT_GE(c.capture_rate, 0.0);
        EXPECT_LE(c.capture_rate, 1.0);
        if (i > 0) {
            EXPECT_LE(c.capture_rate,
                      result.cells[i - 1].capture_rate + 1e-12)
                << "cells must be ranked by capture rate";
        }
    }
}

TEST(Bakeoff, CulpeoCapturesAtLeastCatnap)
{
    // The paper's headline ordering must survive the matrix sweep:
    // ESR-aware admission beats energy-only budgeting overall.
    const sched::AppSpec ps = apps::periodicSensing();
    const sched::AppSpec rr = apps::responsiveReporting();
    const harness::BakeoffResult result =
        harness::runBakeoff(smokeMatrix(ps, rr));
    EXPECT_GE(result.meanCaptureRate("culpeo"),
              result.meanCaptureRate("catnap"));
    EXPECT_GT(result.meanCaptureRate("culpeo"), 0.5);
}

TEST(Bakeoff, ScorecardIsByteDeterministic)
{
    const sched::AppSpec ps = apps::periodicSensing();
    const sched::AppSpec rr = apps::responsiveReporting();
    const auto render = [&] {
        const harness::BakeoffResult result =
            harness::runBakeoff(smokeMatrix(ps, rr));
        std::ostringstream out;
        result.writeCsv(out);
        result.writeJsonl(out);
        return out.str();
    };
    EXPECT_EQ(render(), render());
}

TEST(Bakeoff, ScorecardFormats)
{
    const sched::AppSpec ps = apps::periodicSensing();
    const sched::AppSpec rr = apps::responsiveReporting();
    harness::BakeoffMatrix matrix = smokeMatrix(ps, rr);
    matrix.policies = {"culpeo"};
    matrix.buffers = {{"nominal", 1.0, 1.0}};
    const harness::BakeoffResult result = harness::runBakeoff(matrix);

    std::ostringstream csv;
    result.writeCsv(csv);
    const std::string csv_text = csv.str();
    EXPECT_NE(csv_text.find("rank,policy,buffer,load,environment"),
              std::string::npos);
    EXPECT_NE(csv_text.find("culpeo,nominal,periodic-sensing"),
              std::string::npos);

    std::ostringstream jsonl;
    result.writeJsonl(jsonl);
    const std::string jsonl_text = jsonl.str();
    EXPECT_NE(jsonl_text.find("{\"type\":\"bakeoff\",\"cells\":4}"),
              std::string::npos);
    EXPECT_NE(jsonl_text.find("\"policy\":\"culpeo\""),
              std::string::npos);
    EXPECT_NE(jsonl_text.find("\"captures_per_joule\":"),
              std::string::npos);
}

TEST(Bakeoff, AdaptivePoliciesRunTheScalarPath)
{
    // Non-stationary policies are matrix-eligible (the cell routes
    // them through the serial scalar path instead of the batch lanes).
    const sched::AppSpec ps = apps::periodicSensing();
    harness::BakeoffMatrix matrix;
    matrix.policies = {"eab", "adaptive"};
    matrix.buffers = {{"nominal", 1.0, 1.0}};
    matrix.loads = {{"periodic-sensing", &ps}};
    matrix.environments = {{"steady", nullptr, {}, 1.0}};
    matrix.duration = Seconds(45.0);
    matrix.trials = 2;
    const harness::BakeoffResult result = harness::runBakeoff(matrix);
    ASSERT_EQ(result.cells.size(), 2u);
    for (const harness::BakeoffCell &c : result.cells)
        EXPECT_GT(c.arrived, 0u);
}

TEST(Bakeoff, ValidatesMatrixInput)
{
    const sched::AppSpec ps = apps::periodicSensing();
    const sched::AppSpec rr = apps::responsiveReporting();
    harness::BakeoffMatrix matrix = smokeMatrix(ps, rr);

    harness::BakeoffMatrix empty = matrix;
    empty.policies.clear();
    EXPECT_THROW(harness::runBakeoff(empty), log::FatalError);

    harness::BakeoffMatrix unknown = matrix;
    unknown.policies = {"no-such-policy"};
    EXPECT_THROW(harness::runBakeoff(unknown), log::FatalError);

    harness::BakeoffMatrix null_app = matrix;
    null_app.loads = {{"nothing", nullptr}};
    EXPECT_THROW(harness::runBakeoff(null_app), log::FatalError);

    harness::BakeoffMatrix bad_scale = matrix;
    bad_scale.buffers = {{"zero", 0.0, 1.0}};
    EXPECT_THROW(harness::runBakeoff(bad_scale), log::FatalError);
}

} // namespace
