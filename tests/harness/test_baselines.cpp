/** @file Unit tests for the energy-only baseline estimators. */

#include <gtest/gtest.h>

#include "harness/baselines.hpp"
#include "harness/ground_truth.hpp"
#include "load/library.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;
using harness::BaselineEstimates;
using harness::estimateBaselines;

TEST(Baselines, AllEstimatesAtLeastVoff)
{
    const BaselineEstimates est = estimateBaselines(
        sim::capybaraConfig(), load::uniform(25.0_mA, 10.0_ms));
    EXPECT_GE(est.energy_direct.value(), 1.6);
    EXPECT_GE(est.energy_v.value(), 1.6);
    EXPECT_GE(est.catnap_measured.value(), 1.6);
    EXPECT_GE(est.catnap_slow.value(), 1.6);
}

TEST(Baselines, EnergyDirectTracksTaskEnergy)
{
    const auto cfg = sim::capybaraConfig();
    const auto profile = load::mnistCompute(); // Energy-dominated load.
    const BaselineEstimates est = estimateBaselines(cfg, profile);
    // Vsafe_E^2 - Voff^2 = 2 E_buffer / C, E_buffer >= E_load.
    const double v2 = est.energy_direct.value() * est.energy_direct.value()
                      - 1.6 * 1.6;
    const double e_buffer = v2 * cfg.capacitor.capacitance.value() / 2.0;
    EXPECT_GT(e_buffer, profile.energyAt(cfg.output.vout).value());
    EXPECT_LT(e_buffer, profile.energyAt(cfg.output.vout).value() * 2.0);
}

TEST(Baselines, EnergyVCloseToEnergyDirect)
{
    // The paper calls Energy-V "an end-to-end voltage based approximation
    // that closely tracks with direct measurements" (Section VII-A).
    const BaselineEstimates est = estimateBaselines(
        sim::capybaraConfig(), load::pulseWithCompute(25.0_mA, 10.0_ms));
    EXPECT_NEAR(est.energy_v.value(), est.energy_direct.value(), 0.03);
}

TEST(Baselines, CatnapMeasuredCapturesUnreboundedDropOnUniform)
{
    // Sampling at the last loaded instant sees the full ESR sag, so the
    // uniform-load estimate is much higher than the pure energy cost.
    const BaselineEstimates est = estimateBaselines(
        sim::capybaraConfig(), load::uniform(50.0_mA, 10.0_ms));
    EXPECT_GT(est.catnap_measured.value(),
              est.energy_direct.value() + 0.1);
}

TEST(Baselines, CatnapMissesDropBehindComputeTail)
{
    // With a 100 ms compute tail after the pulse the drop rebounds
    // before the end-of-task measurement: CatNap sees only energy.
    const BaselineEstimates est = estimateBaselines(
        sim::capybaraConfig(), load::pulseWithCompute(50.0_mA, 10.0_ms));
    EXPECT_LT(est.catnap_measured.value(),
              est.energy_direct.value() + 0.15);
}

TEST(Baselines, CatnapSlowBelowCatnapMeasuredOnUniform)
{
    // 2 ms after completion the instantaneous series-ESR rebound has
    // already happened: the slow measurement under-counts the drop.
    const BaselineEstimates est = estimateBaselines(
        sim::capybaraConfig(), load::uniform(50.0_mA, 10.0_ms));
    EXPECT_LT(est.catnap_slow.value(), est.catnap_measured.value());
}

TEST(Baselines, AllBaselinesUnsafeForPulsedLoads)
{
    // The headline failure: every energy-only estimate is below the true
    // Vsafe for a pulse + compute load (Figures 6 and 10).
    const auto cfg = sim::capybaraConfig();
    const auto profile = load::pulseWithCompute(50.0_mA, 10.0_ms);
    const harness::GroundTruth truth = harness::findTrueVsafe(cfg, profile);
    ASSERT_TRUE(truth.feasible);
    const BaselineEstimates est = estimateBaselines(cfg, profile);
    EXPECT_LT(est.energy_direct.value(), truth.vsafe.value());
    EXPECT_LT(est.energy_v.value(), truth.vsafe.value());
    EXPECT_LT(est.catnap_measured.value(), truth.vsafe.value());
    EXPECT_LT(est.catnap_slow.value(), truth.vsafe.value());
}

TEST(Baselines, ProfilingRunRecordsShape)
{
    const BaselineEstimates est = estimateBaselines(
        sim::capybaraConfig(), load::uniform(25.0_mA, 10.0_ms));
    EXPECT_TRUE(est.run.completed);
    EXPECT_LT(est.run.vmin.value(), est.run.vstart.value());
    EXPECT_GT(est.run.vfinal.value(), est.run.vend_loaded.value());
}

} // namespace
