/** @file Unit tests for the brute-force true-Vsafe search. */

#include <gtest/gtest.h>

#include "util/logging.hpp"

#include "harness/ground_truth.hpp"
#include "load/library.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;
using harness::GroundTruth;
using harness::completesFrom;
using harness::findTrueVsafe;

TEST(GroundTruth, CompletesFromVhighForModestLoads)
{
    EXPECT_TRUE(completesFrom(sim::capybaraConfig(), Volts(2.56),
                              load::uniform(10.0_mA, 10.0_ms)));
}

TEST(GroundTruth, FailsJustAboveVoffForHighCurrent)
{
    EXPECT_FALSE(completesFrom(sim::capybaraConfig(), Volts(1.65),
                               load::uniform(50.0_mA, 10.0_ms)));
}

TEST(GroundTruth, SearchBracketsTheBoundary)
{
    const GroundTruth truth = findTrueVsafe(
        sim::capybaraConfig(), load::uniform(25.0_mA, 10.0_ms));
    ASSERT_TRUE(truth.feasible);
    // Starting at the found Vsafe completes; 10 mV lower fails.
    EXPECT_TRUE(completesFrom(sim::capybaraConfig(), truth.vsafe,
                              load::uniform(25.0_mA, 10.0_ms)));
    EXPECT_FALSE(completesFrom(sim::capybaraConfig(),
                               truth.vsafe - Volts(0.01),
                               load::uniform(25.0_mA, 10.0_ms)));
}

TEST(GroundTruth, VminAtVsafeHugsVoff)
{
    // The paper's rig converges until Vmin is within 5 mV of Voff.
    const GroundTruth truth = findTrueVsafe(
        sim::capybaraConfig(), load::uniform(25.0_mA, 10.0_ms),
        Volts(0.5e-3));
    EXPECT_GE(truth.vmin_at_vsafe.value(), 1.6 - 1e-9);
    EXPECT_LE(truth.vmin_at_vsafe.value(), 1.6 + 0.01);
}

TEST(GroundTruth, HigherCurrentNeedsHigherVsafe)
{
    const auto cfg = sim::capybaraConfig();
    double prev = 0.0;
    for (double ma : {5.0, 10.0, 25.0, 50.0}) {
        const GroundTruth truth =
            findTrueVsafe(cfg, load::uniform(Amps(ma * 1e-3), 10.0_ms));
        ASSERT_TRUE(truth.feasible);
        EXPECT_GT(truth.vsafe.value(), prev);
        prev = truth.vsafe.value();
    }
}

TEST(GroundTruth, LongerPulseNeedsHigherVsafe)
{
    const auto cfg = sim::capybaraConfig();
    const double v10 =
        findTrueVsafe(cfg, load::uniform(25.0_mA, 10.0_ms)).vsafe.value();
    const double v100 =
        findTrueVsafe(cfg, load::uniform(25.0_mA, 100.0_ms)).vsafe.value();
    EXPECT_GT(v100, v10);
}

TEST(GroundTruth, InfeasibleLoadReported)
{
    // A huge sustained load cannot run even from Vhigh on this bank.
    const GroundTruth truth = findTrueVsafe(
        sim::capybaraConfig(),
        load::CurrentProfile("hog", {{Seconds(0.5), Amps(0.2)}}));
    EXPECT_FALSE(truth.feasible);
    EXPECT_DOUBLE_EQ(truth.vsafe.value(), 2.56);
}

TEST(GroundTruth, ResolutionBoundsTrialCount)
{
    const GroundTruth coarse = findTrueVsafe(
        sim::capybaraConfig(), load::uniform(10.0_mA, 10.0_ms),
        Volts(10e-3));
    // log2(0.96 / 0.01) ~ 7 bisections plus bracketing runs.
    EXPECT_LE(coarse.trials, 12u);
}

TEST(GroundTruth, ResolutionValidation)
{
    EXPECT_THROW(findTrueVsafe(sim::capybaraConfig(),
                               load::uniform(10.0_mA, 10.0_ms),
                               Volts(0.0)),
                 culpeo::log::FatalError);
}

} // namespace
