/** @file Unit tests for end-to-end Culpeo-R profiling on the simulator. */

#include <gtest/gtest.h>

#include "util/logging.hpp"

#include "harness/ground_truth.hpp"
#include "harness/profiling.hpp"
#include "load/library.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;
using core::Culpeo;
using core::IsrProfiler;
using core::UArchProfiler;
using harness::ProfileOutcome;
using harness::profileTaskFrom;

Culpeo
makeCulpeo(bool uarch)
{
    std::unique_ptr<core::Profiler> profiler;
    if (uarch)
        profiler = std::make_unique<UArchProfiler>();
    else
        profiler = std::make_unique<IsrProfiler>();
    return Culpeo(core::modelFromConfig(sim::capybaraConfig()),
                  std::move(profiler));
}

TEST(Profiling, StoresResultOnSuccess)
{
    Culpeo culpeo = makeCulpeo(true);
    const ProfileOutcome outcome = profileTaskFrom(
        sim::capybaraConfig(), Volts(2.56), culpeo, 1,
        load::uniform(25.0_mA, 10.0_ms));
    ASSERT_TRUE(outcome.stored);
    EXPECT_TRUE(culpeo.hasResult(1));
    EXPECT_GT(outcome.result.vsafe.value(), 1.6);
}

TEST(Profiling, CapturesDipAndRebound)
{
    Culpeo culpeo = makeCulpeo(true);
    const ProfileOutcome outcome = profileTaskFrom(
        sim::capybaraConfig(), Volts(2.4), culpeo, 2,
        load::uniform(50.0_mA, 10.0_ms));
    ASSERT_TRUE(outcome.stored);
    const auto profile = culpeo.table().profile(2, 0);
    ASSERT_TRUE(profile.has_value());
    EXPECT_LT(profile->vmin.value(), profile->vstart.value() - 0.05);
    EXPECT_GT(profile->vfinal.value(), profile->vmin.value() + 0.05);
}

TEST(Profiling, IsrOverheadChargedToTask)
{
    // The ISR profiler's ADC power adds load during profiling, making
    // its profiled energy slightly larger than the uArch profiler's.
    Culpeo isr = makeCulpeo(false);
    Culpeo uarch = makeCulpeo(true);
    profileTaskFrom(sim::capybaraConfig(), Volts(2.56), isr, 1,
                    load::mnistCompute());
    profileTaskFrom(sim::capybaraConfig(), Volts(2.56), uarch, 1,
                    load::mnistCompute());
    const auto p_isr = isr.table().profile(1, 0);
    const auto p_uarch = uarch.table().profile(1, 0);
    ASSERT_TRUE(p_isr.has_value());
    ASSERT_TRUE(p_uarch.has_value());
    // More consumed energy shows as a lower final voltage.
    EXPECT_LE(p_isr->vfinal.value(), p_uarch->vfinal.value() + 0.002);
}

TEST(Profiling, FailedRunLeavesTableUnpopulated)
{
    culpeo::log::setVerbose(false);
    Culpeo culpeo = makeCulpeo(true);
    const ProfileOutcome outcome = profileTaskFrom(
        sim::capybaraConfig(), Volts(1.7), culpeo, 3,
        load::uniform(50.0_mA, 100.0_ms));
    culpeo::log::setVerbose(true);
    EXPECT_FALSE(outcome.stored);
    EXPECT_FALSE(outcome.run.completed);
    EXPECT_FALSE(culpeo.hasResult(3));
}

TEST(Profiling, ProfiledVsafeIsSafe)
{
    // The central claim: the computed Vsafe is within the paper's
    // correctness band (above -2% of the operating range relative to
    // the brute-force truth, Section VII-A), and a task started one
    // such band above it always completes.
    const auto cfg = sim::capybaraConfig();
    const double band = 0.02 * 0.96;
    const auto profile = load::pulseWithCompute(25.0_mA, 10.0_ms);
    const auto truth = harness::findTrueVsafe(cfg, profile);
    ASSERT_TRUE(truth.feasible);
    for (bool uarch : {false, true}) {
        Culpeo culpeo = makeCulpeo(uarch);
        const ProfileOutcome outcome =
            profileTaskFrom(cfg, Volts(2.56), culpeo, 1, profile);
        ASSERT_TRUE(outcome.stored);
        const double vsafe = culpeo.getVsafe(1).value();
        EXPECT_GT(vsafe, truth.vsafe.value() - band);
        EXPECT_TRUE(harness::completesFrom(cfg, Volts(vsafe + band),
                                           profile));
    }
}

TEST(Profiling, UArchVsafeIsStrictlySafe)
{
    // The uArch profiler's conservative quantization keeps its Vsafe
    // above the truth, so the task completes from it directly.
    const auto cfg = sim::capybaraConfig();
    Culpeo culpeo = makeCulpeo(true);
    const auto profile = load::uniform(25.0_mA, 10.0_ms);
    const ProfileOutcome outcome =
        profileTaskFrom(cfg, Volts(2.56), culpeo, 1, profile);
    ASSERT_TRUE(outcome.stored);
    EXPECT_TRUE(harness::completesFrom(cfg, culpeo.getVsafe(1), profile));
}

TEST(MeasureEsr, ApparentEsrMatchesAnalyticModel)
{
    const auto cfg = sim::capybaraConfig().capacitor;
    for (double w : {1e-3, 10e-3, 100e-3}) {
        const Ohms measured =
            harness::measureApparentEsr(cfg, Amps(0.02), Seconds(w));
        const Ohms analytic = cfg.apparentEsrForWidth(Seconds(w));
        EXPECT_NEAR(measured.value(), analytic.value(),
                    analytic.value() * 0.15)
            << "pulse width " << w;
    }
}

TEST(MeasureEsr, CurveIsMonotoneInFrequency)
{
    const auto cfg = sim::capybaraConfig().capacitor;
    const sim::EsrCurve curve = harness::measureEsrCurve(
        cfg, Amps(0.02),
        {Seconds(1e-3), Seconds(10e-3), Seconds(100e-3)});
    // Higher frequency (shorter pulse) -> lower apparent ESR.
    EXPECT_LT(curve.forPulseWidth(Seconds(1e-3)).value(),
              curve.forPulseWidth(Seconds(100e-3)).value());
}

TEST(MeasureEsr, Validation)
{
    const auto cfg = sim::capybaraConfig().capacitor;
    EXPECT_THROW(harness::measureApparentEsr(cfg, Amps(0.0), Seconds(1e-3)),
                 culpeo::log::FatalError);
}

} // namespace
