/** @file Unit tests for the task runner / settle machinery. */

#include <gtest/gtest.h>

#include "util/logging.hpp"

#include "harness/task_runner.hpp"
#include "load/library.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;
using harness::RunOptions;
using harness::RunResult;
using harness::chooseDt;
using harness::runTask;
using harness::runTaskFrom;

TEST(ChooseDt, ResolvesShortSegments)
{
    EXPECT_LE(chooseDt(load::uniform(10.0_mA, 1.0_ms)).value(),
              1e-3 / 20.0 + 1e-12);
    // Clamped to sane bounds.
    EXPECT_GE(chooseDt(load::uniform(10.0_mA, 1.0_ms)).value(), 5e-6);
    EXPECT_LE(chooseDt(load::mnistCompute()).value(), 100e-6);
}

TEST(RunTask, CompletesFromFullBuffer)
{
    const RunResult result = runTaskFrom(
        sim::capybaraConfig(), Volts(2.56), load::uniform(10.0_mA, 10.0_ms));
    EXPECT_TRUE(result.completed);
    EXPECT_FALSE(result.power_failed);
    EXPECT_NEAR(result.vstart.value(), 2.56, 1e-6);
    EXPECT_LT(result.vmin.value(), result.vstart.value());
}

TEST(RunTask, FailsFromLowStart)
{
    const RunResult result = runTaskFrom(
        sim::capybaraConfig(), Volts(1.65), load::uniform(50.0_mA, 10.0_ms));
    EXPECT_FALSE(result.completed);
    EXPECT_TRUE(result.power_failed || result.collapsed);
}

TEST(RunTask, VminAtMostVendLoaded)
{
    const RunResult result = runTaskFrom(
        sim::capybaraConfig(), Volts(2.4),
        load::pulseWithCompute(25.0_mA, 10.0_ms));
    EXPECT_LE(result.vmin.value(), result.vend_loaded.value() + 1e-9);
}

TEST(RunTask, ReboundRecoversAboveLoadedEnd)
{
    // The ESR drop rebounds after the load: vfinal > terminal at the
    // last loaded step (Figure 1b).
    const RunResult result = runTaskFrom(
        sim::capybaraConfig(), Volts(2.4), load::uniform(25.0_mA, 50.0_ms));
    EXPECT_TRUE(result.completed);
    EXPECT_GT(result.vfinal.value(), result.vend_loaded.value() + 0.05);
}

TEST(RunTask, ReboundDoesNotRestoreConsumedEnergy)
{
    const RunResult result = runTaskFrom(
        sim::capybaraConfig(), Volts(2.4), load::uniform(25.0_mA, 50.0_ms));
    EXPECT_LT(result.vfinal.value(), result.vstart.value());
}

TEST(RunTask, SettleDisabledSkipsRebound)
{
    RunOptions options;
    options.settle_rebound = false;
    const RunResult result = runTaskFrom(
        sim::capybaraConfig(), Volts(2.4), load::uniform(25.0_mA, 50.0_ms),
        options);
    EXPECT_NEAR(result.settle_end.value(), result.task_end.value(), 1e-9);
}

TEST(RunTask, SettleRespectsTimeout)
{
    RunOptions options;
    options.settle_timeout = Seconds(0.05);
    const RunResult result = runTaskFrom(
        sim::capybaraConfig(), Volts(2.4), load::uniform(25.0_mA, 50.0_ms),
        options);
    EXPECT_LE((result.settle_end - result.task_end).value(), 0.06);
}

TEST(RunTask, StopOnFailureHaltsEarly)
{
    RunOptions stop;
    stop.settle_rebound = false;
    stop.stop_on_failure = true;
    const RunResult halted = runTaskFrom(
        sim::capybaraConfig(), Volts(1.7), load::uniform(50.0_mA, 100.0_ms),
        stop);
    EXPECT_FALSE(halted.completed);
    EXPECT_LT(halted.task_end.value(), 0.1);

    RunOptions go_on = stop;
    go_on.stop_on_failure = false;
    const RunResult full = runTaskFrom(
        sim::capybaraConfig(), Volts(1.7), load::uniform(50.0_mA, 100.0_ms),
        go_on);
    EXPECT_GE(full.task_end.value(), 0.1 - 1e-6);
}

TEST(RunTask, MonitorDisabledServesNothing)
{
    sim::Device device(sim::capybaraConfig());
    device.setBufferVoltage(Volts(2.0)); // Below Vhigh: output off.
    RunOptions options;
    options.settle_rebound = false;
    const RunResult result =
        runTask(device, load::uniform(10.0_mA, 10.0_ms), options);
    // Nothing was delivered, so nothing failed and no energy moved.
    EXPECT_TRUE(result.completed);
    EXPECT_NEAR(result.vmin.value(), 2.0, 1e-3);
}

TEST(RunTask, InvalidDtIsFatal)
{
    RunOptions options;
    options.dt = Seconds(0.0);
    EXPECT_THROW(runTaskFrom(sim::capybaraConfig(), Volts(2.0),
                             load::uniform(10.0_mA, 10.0_ms), options),
                 culpeo::log::FatalError);
}

} // namespace
