/**
 * @file
 * Tests for the memoized ground-truth cache: hits return the exact
 * computed truth, and the key is sensitive to every input that can
 * change a search's answer (config fields, profile shape, resolution,
 * fast-path flag).
 */

#include <gtest/gtest.h>

#include "harness/vsafe_cache.hpp"
#include "load/library.hpp"
#include "util/parallel.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

TEST(VsafeCache, HitReturnsIdenticalTruth)
{
    harness::VsafeCache cache;
    const auto cfg = sim::capybaraConfig();
    const auto profile = load::uniform(25.0_mA, 10.0_ms);

    const auto first = cache.findOrCompute(cfg, profile);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);

    const auto second = cache.findOrCompute(cfg, profile);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.size(), 1u);

    EXPECT_EQ(first.vsafe.value(), second.vsafe.value());
    EXPECT_EQ(first.feasible, second.feasible);
    EXPECT_EQ(first.vmin_at_vsafe.value(), second.vmin_at_vsafe.value());
    EXPECT_EQ(first.trials, second.trials);
}

TEST(VsafeCache, CachedTruthMatchesDirectSearch)
{
    harness::VsafeCache cache;
    const auto cfg = sim::capybaraConfig();
    const auto profile = load::uniform(40.0_mA, 5.0_ms);
    const auto cached = cache.findOrCompute(cfg, profile);
    const auto direct = harness::findTrueVsafe(cfg, profile);
    EXPECT_EQ(cached.vsafe.value(), direct.vsafe.value());
    EXPECT_EQ(cached.feasible, direct.feasible);
}

TEST(VsafeCache, KeySensitivity)
{
    const auto cfg = sim::capybaraConfig();
    const auto profile = load::uniform(25.0_mA, 10.0_ms);
    const harness::SearchOptions defaults;
    const std::uint64_t base =
        harness::groundTruthKey(cfg, profile, defaults);

    // Same inputs, same key.
    EXPECT_EQ(harness::groundTruthKey(cfg, profile, defaults), base);

    // Any config field that feeds the simulation changes the key.
    {
        auto changed = cfg;
        changed.capacitor.capacitance = Farads(
            changed.capacitor.capacitance.value() * 1.01);
        EXPECT_NE(harness::groundTruthKey(changed, profile, defaults),
                  base);
    }
    {
        auto changed = cfg;
        changed.capacitor.esr_multiplier *= 1.5;
        EXPECT_NE(harness::groundTruthKey(changed, profile, defaults),
                  base);
    }
    {
        auto changed = cfg;
        changed.monitor.voff = Volts(changed.monitor.voff.value() + 1e-3);
        EXPECT_NE(harness::groundTruthKey(changed, profile, defaults),
                  base);
    }

    // Profile shape: different segment currents, durations, or count.
    EXPECT_NE(harness::groundTruthKey(
                  cfg, load::uniform(26.0_mA, 10.0_ms), defaults),
              base);
    EXPECT_NE(harness::groundTruthKey(
                  cfg, load::uniform(25.0_mA, 11.0_ms), defaults),
              base);
    EXPECT_NE(harness::groundTruthKey(
                  cfg, load::pulseWithCompute(25.0_mA, 10.0_ms),
                  defaults),
              base);

    // Search controls.
    {
        harness::SearchOptions options;
        options.resolution = Volts(5e-3);
        EXPECT_NE(harness::groundTruthKey(cfg, profile, options), base);
    }
    {
        harness::SearchOptions options;
        options.allow_fast_path = false;
        EXPECT_NE(harness::groundTruthKey(cfg, profile, options), base);
    }
}

TEST(VsafeCache, ConcurrentLookupsAreConsistent)
{
    harness::VsafeCache cache;
    const auto cfg = sim::capybaraConfig();
    const auto profile = load::uniform(25.0_mA, 10.0_ms);
    const auto expected = harness::findTrueVsafe(cfg, profile);

    util::ThreadPool pool(4);
    std::vector<int> items(32);
    const auto results =
        pool.parallelMap(items, [&](const int &) {
            return cache.findOrCompute(cfg, profile).vsafe.value();
        });
    for (const double v : results)
        EXPECT_EQ(v, expected.vsafe.value());
    // Racing misses may compute the duplicate truth more than once,
    // but every lookup is accounted and the table holds one entry.
    EXPECT_EQ(cache.hits() + cache.misses(), results.size());
    EXPECT_GE(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(VsafeCache, ClearResetsCounters)
{
    harness::VsafeCache cache;
    const auto cfg = sim::capybaraConfig();
    const auto profile = load::uniform(25.0_mA, 10.0_ms);
    cache.findOrCompute(cfg, profile);
    cache.findOrCompute(cfg, profile);
    cache.clear();
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.size(), 0u);
}

} // namespace
