/**
 * @file
 * Tests for the memoized ground-truth cache: hits return the exact
 * computed truth, and the key is sensitive to every input that can
 * change a search's answer (config fields, profile shape, resolution,
 * fast-path flag).
 */

#include <gtest/gtest.h>

#include "harness/vsafe_cache.hpp"
#include "load/library.hpp"
#include "telemetry/telemetry.hpp"
#include "util/parallel.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

TEST(VsafeCache, HitReturnsIdenticalTruth)
{
    harness::VsafeCache cache;
    const auto cfg = sim::capybaraConfig();
    const auto profile = load::uniform(25.0_mA, 10.0_ms);

    const auto first = cache.findOrCompute(cfg, profile);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);

    const auto second = cache.findOrCompute(cfg, profile);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.size(), 1u);

    EXPECT_EQ(first.vsafe.value(), second.vsafe.value());
    EXPECT_EQ(first.feasible, second.feasible);
    EXPECT_EQ(first.vmin_at_vsafe.value(), second.vmin_at_vsafe.value());
    EXPECT_EQ(first.trials, second.trials);
}

TEST(VsafeCache, CachedTruthMatchesDirectSearch)
{
    harness::VsafeCache cache;
    const auto cfg = sim::capybaraConfig();
    const auto profile = load::uniform(40.0_mA, 5.0_ms);
    const auto cached = cache.findOrCompute(cfg, profile);
    const auto direct = harness::findTrueVsafe(cfg, profile);
    EXPECT_EQ(cached.vsafe.value(), direct.vsafe.value());
    EXPECT_EQ(cached.feasible, direct.feasible);
}

TEST(VsafeCache, KeySensitivity)
{
    const auto cfg = sim::capybaraConfig();
    const auto profile = load::uniform(25.0_mA, 10.0_ms);
    const harness::SearchOptions defaults;
    const std::uint64_t base =
        harness::groundTruthKey(cfg, profile, defaults);

    // Same inputs, same key.
    EXPECT_EQ(harness::groundTruthKey(cfg, profile, defaults), base);

    // Any config field that feeds the simulation changes the key.
    {
        auto changed = cfg;
        changed.capacitor.capacitance = Farads(
            changed.capacitor.capacitance.value() * 1.01);
        EXPECT_NE(harness::groundTruthKey(changed, profile, defaults),
                  base);
    }
    {
        auto changed = cfg;
        changed.capacitor.esr_multiplier *= 1.5;
        EXPECT_NE(harness::groundTruthKey(changed, profile, defaults),
                  base);
    }
    {
        auto changed = cfg;
        changed.monitor.voff = Volts(changed.monitor.voff.value() + 1e-3);
        EXPECT_NE(harness::groundTruthKey(changed, profile, defaults),
                  base);
    }

    // Profile shape: different segment currents, durations, or count.
    EXPECT_NE(harness::groundTruthKey(
                  cfg, load::uniform(26.0_mA, 10.0_ms), defaults),
              base);
    EXPECT_NE(harness::groundTruthKey(
                  cfg, load::uniform(25.0_mA, 11.0_ms), defaults),
              base);
    EXPECT_NE(harness::groundTruthKey(
                  cfg, load::pulseWithCompute(25.0_mA, 10.0_ms),
                  defaults),
              base);

    // Search controls.
    {
        harness::SearchOptions options;
        options.resolution = Volts(5e-3);
        EXPECT_NE(harness::groundTruthKey(cfg, profile, options), base);
    }
    {
        harness::SearchOptions options;
        options.allow_fast_path = false;
        EXPECT_NE(harness::groundTruthKey(cfg, profile, options), base);
    }
}

TEST(VsafeCache, ConcurrentLookupsAreConsistent)
{
    harness::VsafeCache cache;
    const auto cfg = sim::capybaraConfig();
    const auto profile = load::uniform(25.0_mA, 10.0_ms);
    const auto expected = harness::findTrueVsafe(cfg, profile);

    util::ThreadPool pool(4);
    std::vector<int> items(32);
    const auto results =
        pool.parallelMap(items, [&](const int &) {
            return cache.findOrCompute(cfg, profile).vsafe.value();
        });
    for (const double v : results)
        EXPECT_EQ(v, expected.vsafe.value());
    // Racing misses may compute the duplicate truth more than once,
    // but every lookup is accounted and the table holds one entry.
    EXPECT_EQ(cache.hits() + cache.misses(), results.size());
    EXPECT_GE(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(VsafeCache, BoundEvictsOldestFirst)
{
    // One stripe: the FIFO order under test is global only then.
    harness::VsafeCache cache(/*max_entries=*/2, /*stripes=*/1);
    const auto cfg = sim::capybaraConfig();
    const auto a = load::uniform(10.0_mA, 5.0_ms);
    const auto b = load::uniform(20.0_mA, 5.0_ms);
    const auto c = load::uniform(30.0_mA, 5.0_ms);

    cache.findOrCompute(cfg, a);
    cache.findOrCompute(cfg, b);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 0u);

    // Third entry exceeds the bound: the oldest (a) is evicted.
    cache.findOrCompute(cfg, c);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);

    // b and c still hit; a recomputes.
    cache.findOrCompute(cfg, b);
    cache.findOrCompute(cfg, c);
    EXPECT_EQ(cache.hits(), 2u);
    cache.findOrCompute(cfg, a);
    EXPECT_EQ(cache.misses(), 4u)
        << "the evicted oldest entry must miss on re-lookup";
}

TEST(VsafeCache, SetMaxEntriesShrinksOldestFirst)
{
    harness::VsafeCache cache(/*max_entries=*/8, /*stripes=*/1);
    const auto cfg = sim::capybaraConfig();
    const auto a = load::uniform(10.0_mA, 5.0_ms);
    const auto b = load::uniform(20.0_mA, 5.0_ms);
    const auto c = load::uniform(30.0_mA, 5.0_ms);
    cache.findOrCompute(cfg, a);
    cache.findOrCompute(cfg, b);
    cache.findOrCompute(cfg, c);
    ASSERT_EQ(cache.size(), 3u);

    cache.setMaxEntries(1);
    EXPECT_EQ(cache.maxEntries(), 1u);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.evictions(), 2u);
    // The newest entry (c) survives.
    cache.findOrCompute(cfg, c);
    EXPECT_EQ(cache.hits(), 1u);
}

TEST(VsafeCache, DefaultBoundIsLarge)
{
    harness::VsafeCache cache;
    EXPECT_EQ(cache.maxEntries(), harness::VsafeCache::kDefaultMaxEntries);
}

TEST(VsafeCache, PublishToExportsCounterGauges)
{
    harness::VsafeCache cache(/*max_entries=*/1);
    const auto cfg = sim::capybaraConfig();
    const auto a = load::uniform(10.0_mA, 5.0_ms);
    const auto b = load::uniform(20.0_mA, 5.0_ms);
    cache.findOrCompute(cfg, a);
    cache.findOrCompute(cfg, a); // Hit.
    cache.findOrCompute(cfg, b); // Miss + eviction of a.

    telemetry::Registry registry;
    cache.publishTo(registry);
    namespace names = culpeo::telemetry::names;
    const telemetry::Gauge *hits =
        registry.findGauge(names::kVsafeCacheHits);
    const telemetry::Gauge *misses =
        registry.findGauge(names::kVsafeCacheMisses);
    const telemetry::Gauge *evictions =
        registry.findGauge(names::kVsafeCacheEvictions);
    ASSERT_NE(hits, nullptr);
    ASSERT_NE(misses, nullptr);
    ASSERT_NE(evictions, nullptr);
    EXPECT_DOUBLE_EQ(hits->value(), 1.0);
    EXPECT_DOUBLE_EQ(misses->value(), 2.0);
    EXPECT_DOUBLE_EQ(evictions->value(), 1.0);

    // GaugeMode::Last totals: republishing does not double-count.
    cache.publishTo(registry);
    EXPECT_DOUBLE_EQ(misses->value(), 2.0);
}

TEST(VsafeCache, StripedContentionMatchesSingleLockTotals)
{
    // The striped table must be observationally identical to the
    // classic single-lock table: same truths, same aggregate counter
    // totals. Warm every key serially first so the concurrent phase's
    // expected hit/miss split is exact (racing first-misses would make
    // per-table miss counts nondeterministic).
    const auto cfg = sim::capybaraConfig();
    constexpr std::size_t kKeys = 12;
    constexpr std::size_t kRounds = 16;
    std::vector<load::CurrentProfile> profiles;
    for (std::size_t i = 0; i < kKeys; ++i) {
        profiles.push_back(load::uniform(
            Amps(1e-3 + 1e-4 * double(i)), Seconds(2e-3)));
    }

    harness::VsafeCache striped(harness::VsafeCache::kDefaultMaxEntries,
                                /*stripes=*/8);
    harness::VsafeCache single(harness::VsafeCache::kDefaultMaxEntries,
                               /*stripes=*/1);
    ASSERT_EQ(striped.stripeCount(), 8u);
    ASSERT_EQ(single.stripeCount(), 1u);

    std::vector<double> expected;
    for (const auto &profile : profiles) {
        const double v = striped.findOrCompute(cfg, profile).vsafe.value();
        EXPECT_EQ(v, single.findOrCompute(cfg, profile).vsafe.value());
        expected.push_back(v);
    }
    ASSERT_EQ(striped.misses(), kKeys);
    ASSERT_EQ(single.misses(), kKeys);

    // Concurrent phase: every lookup is a hit, hammered from a pool so
    // stripes see simultaneous traffic.
    util::ThreadPool pool(4);
    std::vector<std::size_t> items(kKeys * kRounds);
    for (std::size_t i = 0; i < items.size(); ++i)
        items[i] = i % kKeys;
    const auto check = [&](harness::VsafeCache &cache) {
        const auto results =
            pool.parallelMap(items, [&](const std::size_t &i) {
                return cache.findOrCompute(cfg, profiles[i])
                    .vsafe.value();
            });
        for (std::size_t i = 0; i < items.size(); ++i)
            EXPECT_EQ(results[i], expected[items[i]]);
    };
    check(striped);
    check(single);

    // Aggregate totals summed across stripes match the single lock's.
    EXPECT_EQ(striped.hits(), single.hits());
    EXPECT_EQ(striped.hits(), kKeys * kRounds);
    EXPECT_EQ(striped.misses(), single.misses());
    EXPECT_EQ(striped.misses(), kKeys);
    EXPECT_EQ(striped.evictions(), single.evictions());
    EXPECT_EQ(striped.size(), single.size());
    EXPECT_EQ(striped.size(), kKeys);
}

TEST(VsafeCache, ClearResetsCounters)
{
    harness::VsafeCache cache;
    const auto cfg = sim::capybaraConfig();
    const auto profile = load::uniform(25.0_mA, 10.0_ms);
    cache.findOrCompute(cfg, profile);
    cache.findOrCompute(cfg, profile);
    cache.clear();
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.misses(), 0u);
    EXPECT_EQ(cache.size(), 0u);
}

} // namespace
