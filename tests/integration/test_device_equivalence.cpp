/**
 * @file
 * Seeded equivalence suite for the sim::Device execution layer: the
 * analytic fast path and the per-tick Euler reference backend must
 * produce identical verdicts for whole scheduler trials and runtime
 * programs, and the Figure 12 capture rates are pinned to the values
 * the pre-device per-tick drivers produced.
 */

#include <gtest/gtest.h>

#include <memory>

#include "apps/apps.hpp"
#include "fault/injector.hpp"
#include "fault/invariants.hpp"
#include "harness/profiling.hpp"
#include "load/library.hpp"
#include "runtime/intermittent.hpp"
#include "sched/trial.hpp"
#include "sim/device.hpp"
#include "util/random.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;
using sched::AppSpec;
using sched::TrialResult;

/** Fixed-threshold policy: engine behaviour without profiling cost. */
class FixedPolicy : public sched::Policy
{
  public:
    Volts task_start{1.9};
    Volts chain_start{1.9};
    Volts background{2.3};

    const char *name() const override { return "fixed"; }
    void initialize(const AppSpec &) override {}
    sched::Admission admitTask(const sched::SchedTask &) const override
    {
        return {true, task_start};
    }
    sched::Admission admitChain(const sched::EventSpec &) const override
    {
        return {true, chain_start};
    }
    sched::Admission admitBackground(const AppSpec &) const override
    {
        return {true, background};
    }
};

/**
 * A Poisson-arrival app with a background task, so a trial exercises
 * every engine branch: dispatch waits, chain runs, recharge waits,
 * background gating, and idle top-ups.
 */
AppSpec
equivalenceApp(Watts harvest)
{
    AppSpec app;
    app.name = "equivalence";
    app.power = sim::capybaraConfig();
    app.harvest = harvest;

    sched::EventSpec ping;
    ping.name = "ping";
    ping.arrival = sched::Arrival::Poisson;
    ping.interval = 1.5_s;
    ping.deadline = 1.0_s;
    ping.chain = {{1, "blip", load::uniform(15.0_mA, 20.0_ms)}};
    app.events.push_back(ping);

    app.background =
        sched::SchedTask{2, "bg", load::uniform(5.0_mA, 20.0_ms)};
    app.background_period = 0.5_s;
    return app;
}

void
expectTrialsEqual(const TrialResult &fast, const TrialResult &euler,
                  const std::string &label)
{
    SCOPED_TRACE(label);
    ASSERT_EQ(fast.per_event.size(), euler.per_event.size());
    for (std::size_t i = 0; i < fast.per_event.size(); ++i) {
        EXPECT_EQ(fast.per_event[i].arrived, euler.per_event[i].arrived);
        EXPECT_EQ(fast.per_event[i].captured,
                  euler.per_event[i].captured);
        EXPECT_EQ(fast.per_event[i].lost, euler.per_event[i].lost);
    }
    EXPECT_EQ(fast.power_failures, euler.power_failures);
    EXPECT_EQ(fast.background_runs, euler.background_runs);
}

TEST(DeviceEquivalence, TrialVerdictsMatchEulerAcrossSeedsAndHarvests)
{
    FixedPolicy policy;
    for (const double harvest_mw : {2.0, 5.0}) {
        const AppSpec app = equivalenceApp(Watts(harvest_mw * 1e-3));
        for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
            const TrialResult fast = TrialBuilder()
                                         .app(app)
                                         .policy(policy)
                                         .duration(20.0_s)
                                         .seed(seed)
                                         .run();
            const TrialResult euler = TrialBuilder()
                                          .app(app)
                                          .policy(policy)
                                          .duration(20.0_s)
                                          .seed(seed)
                                          .forceEuler()
                                          .run();
            expectTrialsEqual(fast, euler,
                              "harvest=" + std::to_string(harvest_mw) +
                                  "mW seed=" + std::to_string(seed));
        }
    }
}

TEST(DeviceEquivalence, StarvedTrialStillMatchesEuler)
{
    // 0.3 mW cannot sustain the chain threshold: most waits end
    // Unreachable or DeadlineExpired, exercising the failure paths of
    // both backends.
    const AppSpec app = equivalenceApp(Watts(0.3e-3));
    FixedPolicy policy;
    policy.chain_start = Volts(2.5);
    const TrialResult fast = TrialBuilder()
                                 .app(app)
                                 .policy(policy)
                                 .duration(15.0_s)
                                 .seed(3)
                                 .run();
    const TrialResult euler = TrialBuilder()
                                  .app(app)
                                  .policy(policy)
                                  .duration(15.0_s)
                                  .seed(3)
                                  .forceEuler()
                                  .run();
    expectTrialsEqual(fast, euler, "starved");
    EXPECT_GT(fast.eventStats("ping").lost, 0u);
}

TEST(DeviceEquivalence, FaultInstrumentedTrialsAreDeterministic)
{
    // Attached fault hooks force the per-step backend regardless of
    // allow_fast_path; the fast-path and forced-Euler configurations
    // must therefore agree bit-for-bit, observer attached and all.
    const AppSpec app = equivalenceApp(Watts(5e-3));
    FixedPolicy policy;
    util::Rng rng(11);
    const fault::FaultPlan plan = fault::randomPlan(rng, 20.0_s);

    fault::FaultInjector injector_a(plan, /*noise_seed=*/5);
    fault::InvariantMonitor monitor_a(app.power.monitor.voff);
    const TrialResult fast = TrialBuilder()
                                 .app(app)
                                 .policy(policy)
                                 .duration(20.0_s)
                                 .seed(9)
                                 .faults(&injector_a)
                                 .observer(&monitor_a)
                                 .run();

    fault::FaultInjector injector_b(plan, /*noise_seed=*/5);
    fault::InvariantMonitor monitor_b(app.power.monitor.voff);
    const TrialResult euler = TrialBuilder()
                                  .app(app)
                                  .policy(policy)
                                  .duration(20.0_s)
                                  .seed(9)
                                  .faults(&injector_b)
                                  .observer(&monitor_b)
                                  .forceEuler()
                                  .run();

    expectTrialsEqual(fast, euler, "faulted");
    EXPECT_EQ(monitor_a.commits(), monitor_b.commits());
}

TEST(DeviceEquivalence, RunProgramVerdictsMatchEuler)
{
    const sim::ConstantHarvester harvester(Watts(10e-3));
    core::Culpeo culpeo(core::modelFromConfig(sim::capybaraConfig()),
                        std::make_unique<core::UArchProfiler>());
    const auto radio = load::uniform(50.0_mA, 20.0_ms).renamed("radio");
    harness::profileTaskFrom(sim::capybaraConfig(), Volts(2.56), culpeo,
                             1, radio);

    runtime::RuntimeOptions options;
    options.policy = runtime::DispatchPolicy::VsafeGated;
    options.culpeo = &culpeo;
    const std::vector<runtime::AtomicTask> program = {
        {1, "sense", load::imuRead()}, {2, "radio", radio}};

    auto runOnce = [&](bool allow_fast) {
        sim::DeviceOptions device_options;
        device_options.allow_fast_path = allow_fast;
        sim::Device device(sim::capybaraConfig(), device_options);
        device.setHarvester(&harvester);
        device.setBufferVoltage(Volts(1.75));
        device.forceOutputEnabled(true);
        runtime::ProgramResult result =
            runtime::runProgram(device, program, options);
        return result;
    };

    const runtime::ProgramResult fast = runOnce(true);
    const runtime::ProgramResult euler = runOnce(false);

    EXPECT_EQ(fast.finished, euler.finished);
    EXPECT_TRUE(fast.finished);
    EXPECT_EQ(fast.totalFailures(), euler.totalFailures());
    EXPECT_EQ(fast.power_failures, euler.power_failures);
    // Both backends make dispatch decisions on the same tick grid, so
    // total program time agrees to within a couple of ticks.
    EXPECT_NEAR(fast.elapsed.value(), euler.elapsed.value(), 2.1e-3);
}

TEST(DeviceEquivalence, StarvedProgramMatchesEulerDiagnosis)
{
    // No harvester at all: the first recharge can never complete. The
    // fast path proves it instantly; the Euler backend detects the
    // stall. Both must report the same starvation verdict.
    const std::vector<runtime::AtomicTask> program = {
        {1, "sense", load::imuRead()}};
    runtime::RuntimeOptions options;

    auto runOnce = [&](bool allow_fast) {
        sim::DeviceOptions device_options;
        device_options.allow_fast_path = allow_fast;
        sim::Device device(sim::capybaraConfig(), device_options);
        device.setBufferVoltage(Volts(1.0));
        return runtime::runProgram(device, program, options);
    };

    const runtime::ProgramResult fast = runOnce(true);
    const runtime::ProgramResult euler = runOnce(false);
    EXPECT_TRUE(fast.starved);
    EXPECT_TRUE(euler.starved);
    EXPECT_EQ(fast.stuck_task, euler.stuck_task);
    EXPECT_FALSE(fast.diagnostic.empty());
    EXPECT_FALSE(euler.diagnostic.empty());
    // The fast path answers without simulating; the Euler stall probe
    // needs only its bounded detection window, not the full timeout.
    EXPECT_LT(euler.elapsed.value(), options.timeout.value() / 2.0);
}

/**
 * Figure 12 golden regression: the Periodic Sensing capture rates and
 * power-failure counts under both policies, pinned to the values the
 * pre-device per-tick drivers produced (three 300 s trials, seeds from
 * runTrials' default base). Guards the device migration end to end.
 */
/**
 * Golden pinning for the Figure 12 Periodic Sensing column, before and
 * after the migration. The Euler-forced engine must reproduce the
 * pre-device per-tick driver's rates exactly (the migration preserved
 * semantics); the default fast path is pinned to its own recorded
 * values, whose small catnap-side shift is the analytic integrator's
 * inherent micro-volt drift quantized at the miscalibrated baseline's
 * threshold crossings. Culpeo's guard band absorbs that drift, so its
 * column is identical under both backends.
 */
TEST(DeviceEquivalence, Fig12PeriodicSensingRatesMatchGolden)
{
    const AppSpec app = apps::periodicSensing();

    sched::CatnapPolicy catnap;
    catnap.initialize(app);
    sched::CulpeoPolicy culpeo;
    culpeo.initialize(app);

    const sched::AggregateResult cat_pre = TrialBuilder()
                                               .app(app)
                                               .policy(catnap)
                                               .duration(300.0_s)
                                               .trials(3)
                                               .forceEuler()
                                               .runAll();
    const sched::AggregateResult cul_pre = TrialBuilder()
                                               .app(app)
                                               .policy(culpeo)
                                               .duration(300.0_s)
                                               .trials(3)
                                               .forceEuler()
                                               .runAll();

    // Pre-refactor golden (fig12_events output at the seed commit).
    EXPECT_NEAR(cat_pre.rateOf("imu"), 0.1515, 5e-4);
    EXPECT_NEAR(cat_pre.power_failures_per_trial, 10.0, 1e-9);
    EXPECT_NEAR(cul_pre.rateOf("imu"), 1.0, 1e-12);
    EXPECT_NEAR(cul_pre.power_failures_per_trial, 0.0, 1e-12);

    const sched::AggregateResult cat_post = TrialBuilder()
                                                .app(app)
                                                .policy(catnap)
                                                .duration(300.0_s)
                                                .trials(3)
                                                .runAll();
    const sched::AggregateResult cul_post = TrialBuilder()
                                                .app(app)
                                                .policy(culpeo)
                                                .duration(300.0_s)
                                                .trials(3)
                                                .runAll();

    // Post-migration fast-path golden.
    EXPECT_NEAR(cat_post.rateOf("imu"), 0.1364, 5e-4);
    EXPECT_NEAR(cat_post.power_failures_per_trial, 10.0, 1e-9);
    EXPECT_NEAR(cul_post.rateOf("imu"), 1.0, 1e-12);
    EXPECT_NEAR(cul_post.power_failures_per_trial, 0.0, 1e-12);
}

} // namespace
