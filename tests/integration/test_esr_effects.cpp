/**
 * @file
 * Integration tests of the motivating ESR phenomena: the Figure 4
 * "plenty of energy but the device died" failure, the Section II-D
 * decoupling-capacitor non-fix, and the Figure 5 schedule failure.
 */

#include <gtest/gtest.h>

#include "core/vsafe_multi.hpp"
#include "harness/baselines.hpp"
#include "harness/ground_truth.hpp"
#include "load/library.hpp"
#include "sim/two_cap.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

TEST(EsrEffects, LoRaClassLoadKillsDeviceWithAmpleEnergy)
{
    // Figure 4: a 50 mA LoRa-class transmission from mid-range voltage
    // powers the device off while most stored energy remains.
    sim::Device device(sim::capybaraConfig());
    device.setBufferVoltage(Volts(2.0));
    device.forceOutputEnabled(true);
    const Joules before = device.system().capacitor().storedEnergy();
    const Joules usable_before =
        before - units::capacitorEnergy(Farads(45e-3), Volts(1.6));

    harness::RunOptions options;
    options.settle_rebound = false;
    const auto result =
        harness::runTask(device, load::uniform(50.0_mA, 100.0_ms), options);

    EXPECT_FALSE(result.completed);
    const Joules after = device.system().capacitor().storedEnergy();
    const Joules usable_after =
        after - units::capacitorEnergy(Farads(45e-3), Volts(1.6));
    // More than 80% of the *usable* energy is still there.
    EXPECT_GT(usable_after.value(), usable_before.value() * 0.8);
}

TEST(EsrEffects, SameLoadFineOnLowEsrBank)
{
    // The identical load completes from the same voltage when the bank
    // has ceramic-class ESR: the failure is ESR, not energy.
    auto cfg = sim::capybaraConfig();
    cfg.capacitor.series_esr = Ohms(0.01);
    cfg.capacitor.bulk_resistance = Ohms(0.05);
    cfg.capacitor.surface_resistance = Ohms(0.01);
    EXPECT_TRUE(harness::completesFrom(cfg, Volts(2.0),
                                       load::uniform(50.0_mA, 100.0_ms)));
}

TEST(EsrEffects, EsrDropDominatesEnergyDropOnRealTrace)
{
    // Figure 1(b): the transient ESR drop exceeds the energy-consumption
    // drop for a high-current pulse.
    const auto est = harness::estimateBaselines(
        sim::capybaraConfig(), load::uniform(50.0_mA, 100.0_ms));
    const double energy_drop = est.run.vstart.value() -
                               est.run.vfinal.value();
    const double total_drop = est.run.vstart.value() -
                              est.run.vmin.value();
    const double esr_drop = total_drop - energy_drop;
    EXPECT_GT(esr_drop, energy_drop);
}

TEST(EsrEffects, DecouplingSweepLeavesResidualDrop)
{
    // Section II-D: 400 uF .. 6.4 mF of decoupling on a 33 mF supercap
    // still shows a >= 200 mV drop for a 50 mA / 100 ms load.
    for (double c_d : {400e-6, 1.6e-3, 6.4e-3}) {
        sim::CapBranch super{Farads(33e-3), Ohms(8.0), Volts(2.5)};
        sim::CapBranch dec{Farads(c_d), Ohms(0.01), Volts(2.5)};
        sim::TwoCapNetwork net(super, dec);
        net.setVoltage(Volts(2.5));
        double vmin = 2.5;
        double elapsed = 0.0;
        while (elapsed < 0.1) {
            net.step(Seconds(1e-5), Amps(0.05));
            vmin = std::min(vmin, net.nodeVoltage(Amps(0.05)).value());
            elapsed += 1e-5;
        }
        EXPECT_GT(2.5 - vmin, 0.2)
            << "decoupling " << c_d * 1e6 << " uF hid the ESR drop";
    }
}

TEST(EsrEffects, MoreDecouplingHelpsButSaturates)
{
    auto min_drop = [](double c_d) {
        sim::CapBranch super{Farads(33e-3), Ohms(8.0), Volts(2.5)};
        sim::CapBranch dec{Farads(c_d), Ohms(0.01), Volts(2.5)};
        sim::TwoCapNetwork net(super, dec);
        net.setVoltage(Volts(2.5));
        double vmin = 2.5;
        double elapsed = 0.0;
        while (elapsed < 0.1) {
            net.step(Seconds(1e-5), Amps(0.05));
            vmin = std::min(vmin, net.nodeVoltage(Amps(0.05)).value());
            elapsed += 1e-5;
        }
        return 2.5 - vmin;
    };
    EXPECT_GT(min_drop(400e-6), min_drop(6.4e-3));
}

TEST(EsrEffects, CatnapFeasibleScheduleFailsUnderEsr)
{
    // Figure 5: a schedule CatNap's energy reasoning declares feasible
    // (sense then radio in one discharge) fails because the radio starts
    // below its ESR-aware requirement.
    const auto cfg = sim::capybaraConfig();
    const auto sense = load::uniform(5.0_mA, 50.0_ms).renamed("sense");
    const auto radio = load::uniform(50.0_mA, 20.0_ms).renamed("radio");

    // CatNap's budget: energy-only voltage costs.
    const auto est_sense = harness::estimateBaselines(cfg, sense);
    const auto est_radio = harness::estimateBaselines(cfg, radio);
    const double budget = (est_sense.energy_direct.value() - 1.6) +
                          (est_radio.energy_direct.value() - 1.6) + 1.6;

    // The combined profile's true requirement exceeds the budget...
    const auto truth =
        harness::findTrueVsafe(cfg, sense.then(radio));
    ASSERT_TRUE(truth.feasible);
    EXPECT_GT(truth.vsafe.value(), budget);
    // ...so executing from CatNap's budget voltage browns out.
    EXPECT_FALSE(harness::completesFrom(cfg, Volts(budget),
                                        sense.then(radio)));
}

TEST(EsrEffects, AgedCapacitorRaisesTrueVsafe)
{
    auto fresh = sim::capybaraConfig();
    auto aged = sim::capybaraConfig();
    aged.capacitor.esr_multiplier = 2.0;
    aged.capacitor.capacitance_fraction = 0.8;
    const auto profile = load::uniform(25.0_mA, 10.0_ms);
    const auto v_fresh = harness::findTrueVsafe(fresh, profile);
    const auto v_aged = harness::findTrueVsafe(aged, profile);
    ASSERT_TRUE(v_fresh.feasible);
    ASSERT_TRUE(v_aged.feasible);
    EXPECT_GT(v_aged.vsafe.value(), v_fresh.vsafe.value() + 0.05);
}

} // namespace
