/**
 * @file
 * Integration test of the intermittent reboot story: profile tasks
 * once, checkpoint the Culpeo tables (FRAM image), lose power, restore
 * into a fresh runtime instance, and dispatch safely without ever
 * re-profiling — the workflow an intermittent device actually follows,
 * since its RAM state dies with every brown-out.
 */

#include <gtest/gtest.h>

#include <memory>

#include "util/logging.hpp"
#include "core/persistence.hpp"
#include "harness/profiling.hpp"
#include "load/library.hpp"
#include "runtime/intermittent.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

std::vector<runtime::AtomicTask>
program()
{
    return {
        {1, "sense", load::imuRead()},
        {2, "send", load::uniform(45.0_mA, 25.0_ms).renamed("send")},
    };
}

TEST(RebootPersistence, RestoredTablesDriveGatedDispatch)
{
    const auto cfg = sim::capybaraConfig();
    const auto model = core::modelFromConfig(cfg);

    // Boot 1: profile both tasks and checkpoint the tables.
    std::vector<std::uint8_t> fram;
    {
        core::Culpeo culpeo(model,
                            std::make_unique<core::UArchProfiler>());
        for (const auto &task : program()) {
            harness::profileTaskFrom(cfg, cfg.monitor.vhigh, culpeo,
                                     task.id, task.profile);
            ASSERT_TRUE(culpeo.hasResult(task.id));
        }
        fram = culpeo.snapshot();
    } // "Power failure": all RAM state (the Culpeo object) is gone.

    // Boot 2: restore the tables; no profiling pass needed.
    core::Culpeo rebooted(model, std::make_unique<core::UArchProfiler>());
    ASSERT_FALSE(rebooted.hasResult(1));
    ASSERT_TRUE(core::imageIsValid(fram));
    rebooted.restore(fram);
    ASSERT_TRUE(rebooted.hasResult(1));
    ASSERT_TRUE(rebooted.hasResult(2));

    // The restored values gate dispatch exactly as the originals would:
    // the program completes from mid-charge without a single brown-out.
    const sim::ConstantHarvester harvester(5.0_mW);
    sim::Device device(cfg);
    device.setHarvester(&harvester);
    device.setBufferVoltage(Volts(1.8));
    device.forceOutputEnabled(true);

    runtime::RuntimeOptions options;
    options.policy = runtime::DispatchPolicy::VsafeGated;
    options.culpeo = &rebooted;
    const runtime::ProgramResult result =
        runtime::runProgram(device, program(), options);
    EXPECT_TRUE(result.finished);
    EXPECT_EQ(result.totalFailures(), 0u);
    EXPECT_EQ(result.power_failures, 0u);
}

TEST(RebootPersistence, CorruptImageForcesReprofiling)
{
    const auto cfg = sim::capybaraConfig();
    const auto model = core::modelFromConfig(cfg);
    core::Culpeo culpeo(model, std::make_unique<core::UArchProfiler>());
    harness::profileTaskFrom(cfg, cfg.monitor.vhigh, culpeo, 1,
                             load::imuRead());
    auto fram = culpeo.snapshot();
    fram[fram.size() / 3] ^= 0x01; // Torn write during the brown-out.

    core::Culpeo rebooted(model, std::make_unique<core::UArchProfiler>());
    EXPECT_FALSE(core::imageIsValid(fram));
    EXPECT_THROW(rebooted.restore(fram), culpeo::log::FatalError);
    // The device falls back to the conservative default (Vhigh) and can
    // simply profile again.
    EXPECT_DOUBLE_EQ(rebooted.getVsafe(1).value(), model.vhigh.value());
    harness::profileTaskFrom(cfg, cfg.monitor.vhigh, rebooted, 1,
                             load::imuRead());
    EXPECT_TRUE(rebooted.hasResult(1));
}

} // namespace
