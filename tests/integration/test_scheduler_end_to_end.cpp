/**
 * @file
 * End-to-end scheduler integration tests (the Figure 12/13 mechanism in
 * miniature): Culpeo-integrated scheduling captures events that the
 * energy-only CatNap policy loses to ESR-induced brown-outs.
 *
 * Trials are shortened relative to the benchmark binaries to keep the
 * test suite fast; the full five-minute, three-trial runs live in
 * bench/fig12_events.
 */

#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "sched/trial.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;
using sched::AggregateResult;
using sched::CatnapPolicy;
using sched::CulpeoPolicy;

class SchedulerEndToEnd : public ::testing::Test
{
  protected:
    static sched::AppSpec ps_;
    static CatnapPolicy catnap_;
    static CulpeoPolicy culpeo_;
    static bool ready_;

    static void
    SetUpTestSuite()
    {
        if (!ready_) {
            ps_ = apps::periodicSensing();
            catnap_.initialize(ps_);
            culpeo_.initialize(ps_);
            ready_ = true;
        }
    }
};

sched::AppSpec SchedulerEndToEnd::ps_;
CatnapPolicy SchedulerEndToEnd::catnap_;
CulpeoPolicy SchedulerEndToEnd::culpeo_;
bool SchedulerEndToEnd::ready_ = false;

TEST_F(SchedulerEndToEnd, CulpeoCapturesNearlyAllPsEvents)
{
    const AggregateResult result =
        TrialBuilder().app(ps_).policy(culpeo_).duration(60.0_s).trials(1).runAll();
    EXPECT_GE(result.rateOf("imu"), 0.9);
}

TEST_F(SchedulerEndToEnd, CatnapLosesPsEventsToPowerFailures)
{
    const sched::TrialResult result =
        TrialBuilder().app(ps_).policy(catnap_).duration(60.0_s).seed(1).run();
    EXPECT_GT(result.power_failures, 0u)
        << "CatNap should brown out running at its energy-only Vsafe";
    EXPECT_LT(result.eventStats("imu").captureRate(), 0.9);
}

TEST_F(SchedulerEndToEnd, CulpeoBeatsCatnapOnPs)
{
    const AggregateResult catnap_result =
        TrialBuilder().app(ps_).policy(catnap_).duration(60.0_s).trials(2).runAll();
    const AggregateResult culpeo_result =
        TrialBuilder().app(ps_).policy(culpeo_).duration(60.0_s).trials(2).runAll();
    EXPECT_GT(culpeo_result.rateOf("imu"),
              catnap_result.rateOf("imu"));
}

TEST_F(SchedulerEndToEnd, CulpeoAvoidsPowerFailures)
{
    const sched::TrialResult result =
        TrialBuilder().app(ps_).policy(culpeo_).duration(60.0_s).seed(3).run();
    EXPECT_EQ(result.power_failures, 0u);
}

TEST(SchedulerNmr, CulpeoServesBothEventStreams)
{
    // NMR has two competing event streams (periodic mic + Poisson BLE)
    // plus FFT background work; Culpeo must serve both without
    // brown-outs.
    const sched::AppSpec nmr = apps::noiseMonitoring();
    CulpeoPolicy culpeo;
    culpeo.initialize(nmr);
    const sched::TrialResult result =
        TrialBuilder().app(nmr).policy(culpeo).duration(120.0_s).seed(11).run();
    EXPECT_EQ(result.power_failures, 0u);
    EXPECT_GE(result.eventStats("mic").captureRate(), 0.9);
    EXPECT_GE(result.eventStats("ble").captureRate(), 0.7);
    EXPECT_GT(result.background_runs, 0u);
}

TEST(SchedulerNmr, CatnapBrownsOutOnBleReports)
{
    const sched::AppSpec nmr = apps::noiseMonitoring();
    CatnapPolicy catnap;
    catnap.initialize(nmr);
    const AggregateResult result =
        TrialBuilder().app(nmr).policy(catnap).duration(200.0_s).trials(2).runAll();
    // The BLE chain's ESR drop is what CatNap's estimate misses.
    EXPECT_GT(result.power_failures_per_trial, 0.0);
    EXPECT_LT(result.rateOf("ble"), 0.95);
}

TEST(SchedulerRr, CatnapFailsMostRrResponses)
{
    // Compressed RR: 30 s mean inter-arrival over 300 s keeps the test
    // quick while exercising the sense->encrypt->BLE chain with enough
    // arrivals for stable rates.
    const sched::AppSpec rr = apps::responsiveReporting(30.0_s);
    CatnapPolicy catnap;
    catnap.initialize(rr);
    CulpeoPolicy culpeo;
    culpeo.initialize(rr);

    const AggregateResult catnap_result =
        TrialBuilder().app(rr).policy(catnap).duration(300.0_s).trials(3).runAll();
    const AggregateResult culpeo_result =
        TrialBuilder().app(rr).policy(culpeo).duration(300.0_s).trials(3).runAll();

    EXPECT_LT(catnap_result.rateOf("report"), 0.6)
        << "CatNap should fail most RR responses";
    EXPECT_GT(culpeo_result.rateOf("report"), 0.7)
        << "Culpeo should capture most RR responses";
    EXPECT_GT(culpeo_result.rateOf("report"),
              catnap_result.rateOf("report") + 0.15);
}

} // namespace
