/**
 * @file
 * Integration tests of the paper's central quantitative claim
 * (Figure 10): for every synthetic load in the sweep, Culpeo's Vsafe
 * estimates are safe (at or above the brute-force truth) while the
 * energy-only estimates are unsafe for pulsed loads.
 *
 * Parameterized across the full (Iload, tpulse) x (uniform, pulse+tail)
 * grid of Table III.
 */

#include <gtest/gtest.h>

#include "core/api.hpp"
#include "core/vsafe_pg.hpp"
#include "harness/baselines.hpp"
#include "harness/ground_truth.hpp"
#include "harness/profiling.hpp"
#include "load/library.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using core::Culpeo;

struct SweepCase
{
    double ma;
    double ms;
    bool with_tail;
};

std::string
caseName(const ::testing::TestParamInfo<SweepCase> &info)
{
    std::string name = std::to_string(int(info.param.ma)) + "mA_" +
                       std::to_string(int(info.param.ms)) + "ms";
    name += info.param.with_tail ? "_pulse" : "_uniform";
    return name;
}

load::CurrentProfile
profileFor(const SweepCase &c)
{
    const Amps i(c.ma * 1e-3);
    const Seconds w(c.ms * 1e-3);
    return c.with_tail ? load::pulseWithCompute(i, w)
                       : load::uniform(i, w);
}

class VsafeSweep : public ::testing::TestWithParam<SweepCase>
{
  protected:
    static double
    rangePercent(double volts)
    {
        return volts / 0.96 * 100.0;
    }
};

TEST_P(VsafeSweep, GroundTruthIsFeasibleAndAboveVoff)
{
    const auto truth =
        harness::findTrueVsafe(sim::capybaraConfig(), profileFor(GetParam()));
    ASSERT_TRUE(truth.feasible);
    EXPECT_GT(truth.vsafe.value(), 1.6);
    EXPECT_LT(truth.vsafe.value(), 2.56);
}

TEST_P(VsafeSweep, CulpeoPgIsSafeAndTight)
{
    const auto cfg = sim::capybaraConfig();
    const auto profile = profileFor(GetParam());
    const auto truth = harness::findTrueVsafe(cfg, profile);
    ASSERT_TRUE(truth.feasible);

    const core::PgResult pg =
        core::culpeoPg(profile, core::modelFromConfig(cfg));
    const double err = rangePercent(pg.vsafe.value() - truth.vsafe.value());
    // Figure 10 criterion: above -2% is correct, below +~12% is
    // performant (PG drifts slightly on the highest-energy loads).
    EXPECT_GT(err, -2.0) << "Culpeo-PG unsafe: " << pg.vsafe.value()
                         << " vs truth " << truth.vsafe.value();
    EXPECT_LT(err, 14.0) << "Culpeo-PG overly conservative";
}

TEST_P(VsafeSweep, CulpeoRIsSafeAndTight)
{
    const auto cfg = sim::capybaraConfig();
    const auto profile = profileFor(GetParam());
    const auto truth = harness::findTrueVsafe(cfg, profile);
    ASSERT_TRUE(truth.feasible);

    for (bool uarch : {false, true}) {
        std::unique_ptr<core::Profiler> profiler;
        if (uarch)
            profiler = std::make_unique<core::UArchProfiler>();
        else
            profiler = std::make_unique<core::IsrProfiler>();
        Culpeo culpeo(core::modelFromConfig(cfg), std::move(profiler));
        const auto outcome = harness::profileTaskFrom(
            cfg, Volts(2.56), culpeo, 1, profile);
        ASSERT_TRUE(outcome.stored);
        const double err = rangePercent(culpeo.getVsafe(1).value() -
                                        truth.vsafe.value());
        EXPECT_GT(err, -2.0)
            << (uarch ? "uArch" : "ISR") << " unsafe";
        EXPECT_LT(err, 20.0)
            << (uarch ? "uArch" : "ISR") << " overly conservative";
    }
}

TEST_P(VsafeSweep, EnergyEstimatesUnsafeForPulsedHighCurrentLoads)
{
    const SweepCase c = GetParam();
    if (!c.with_tail || c.ma < 25.0) {
        GTEST_SKIP() << "unsafety is asserted for high-current tails";
    }
    const auto cfg = sim::capybaraConfig();
    const auto profile = profileFor(c);
    const auto truth = harness::findTrueVsafe(cfg, profile);
    ASSERT_TRUE(truth.feasible);
    const auto baselines = harness::estimateBaselines(cfg, profile);
    // The drop rebounds behind the compute tail, so every energy-only
    // estimator lands below the true requirement (Figures 6 and 10).
    EXPECT_LT(baselines.energy_direct.value(), truth.vsafe.value());
    EXPECT_LT(baselines.catnap_measured.value(), truth.vsafe.value());
    EXPECT_LT(baselines.catnap_slow.value(), truth.vsafe.value());
}

INSTANTIATE_TEST_SUITE_P(
    Figure10, VsafeSweep,
    ::testing::Values(
        SweepCase{5.0, 100.0, false}, SweepCase{10.0, 100.0, false},
        SweepCase{5.0, 10.0, false}, SweepCase{10.0, 10.0, false},
        SweepCase{25.0, 10.0, false}, SweepCase{50.0, 10.0, false},
        SweepCase{10.0, 1.0, false}, SweepCase{25.0, 1.0, false},
        SweepCase{50.0, 1.0, false}, SweepCase{5.0, 100.0, true},
        SweepCase{10.0, 100.0, true}, SweepCase{5.0, 10.0, true},
        SweepCase{10.0, 10.0, true}, SweepCase{25.0, 10.0, true},
        SweepCase{50.0, 10.0, true}, SweepCase{10.0, 1.0, true},
        SweepCase{25.0, 1.0, true}, SweepCase{50.0, 1.0, true}),
    caseName);

} // namespace
