/**
 * @file
 * Golden-file tests for trace I/O: checked-in fixtures under
 * tests/data/ pin the on-disk CSV format. The good fixture was written
 * by saveTraceCsv itself (gesture sensor at 50 kHz), so any format
 * drift in either direction — load rejecting old files, or save
 * emitting something new — breaks a test here before it breaks a
 * user's archived captures.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/vsafe_pg.hpp"
#include "load/library.hpp"
#include "load/trace_io.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using load::SampledTrace;
using load::loadTraceCsv;
using load::saveTraceCsv;

std::string
dataPath(const std::string &name)
{
    return std::string(CULPEO_TEST_DATA_DIR) + "/" + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

TEST(GoldenTrace, MatchesLibraryProfileExactly)
{
    const SampledTrace golden =
        loadTraceCsv(dataPath("gesture_50khz.csv"));
    const SampledTrace expected = SampledTrace::fromProfile(
        load::gestureSensor(), Hertz(50e3));
    EXPECT_DOUBLE_EQ(golden.rate().value(), 50e3);
    ASSERT_EQ(golden.size(), expected.size());
    for (std::size_t i = 0; i < golden.size(); ++i)
        EXPECT_DOUBLE_EQ(golden[i].value(), expected[i].value());
}

TEST(GoldenTrace, SaveReproducesTheCheckedInBytes)
{
    // load ∘ save must be the identity on files save produced: re-saving
    // the loaded golden trace yields a byte-identical file.
    const std::string golden_path = dataPath("gesture_50khz.csv");
    const std::string resaved_path =
        ::testing::TempDir() + "culpeo_golden_resave.csv";
    saveTraceCsv(loadTraceCsv(golden_path), resaved_path);
    EXPECT_EQ(slurp(resaved_path), slurp(golden_path));
    std::remove(resaved_path.c_str());
}

TEST(GoldenTrace, FeedsCulpeoPgLikeTheInMemoryProfile)
{
    const auto model = core::modelFromConfig(sim::capybaraConfig());
    const double from_golden =
        core::culpeoPg(loadTraceCsv(dataPath("gesture_50khz.csv")),
                       model)
            .vsafe.value();
    const double from_memory =
        core::culpeoPg(SampledTrace::fromProfile(load::gestureSensor(),
                                                 Hertz(50e3)),
                       model)
            .vsafe.value();
    EXPECT_DOUBLE_EQ(from_golden, from_memory);
}

class MalformedFixture : public ::testing::TestWithParam<const char *>
{};

TEST_P(MalformedFixture, IsRejected)
{
    EXPECT_THROW(loadTraceCsv(dataPath(GetParam())), log::FatalError);
}

INSTANTIATE_TEST_SUITE_P(
    Files, MalformedFixture,
    ::testing::Values("malformed_header.csv", "malformed_sample.csv",
                      "malformed_negative.csv", "malformed_rate.csv"));

} // namespace
