/** @file Unit tests for the Table III load-profile library. */

#include <gtest/gtest.h>

#include "load/library.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

TEST(Library, UniformMatchesTableIII)
{
    const auto p = load::uniform(50.0_mA, 10.0_ms);
    EXPECT_EQ(p.segments().size(), 1u);
    EXPECT_DOUBLE_EQ(p.peakCurrent().value(), 0.05);
    EXPECT_NEAR(p.duration().value(), 0.01, 1e-12);
}

TEST(Library, PulseAddsComputeTail)
{
    const auto p = load::pulseWithCompute(25.0_mA, 10.0_ms);
    EXPECT_EQ(p.segments().size(), 2u);
    EXPECT_NEAR(p.duration().value(), 0.110, 1e-12);
    EXPECT_DOUBLE_EQ(p.currentAt(Seconds(0.05)).value(),
                     load::computeTailCurrent().value());
}

TEST(Library, Figure10SweepHasNinePoints)
{
    const auto sweep = load::figure10Sweep();
    EXPECT_EQ(sweep.size(), 9u);
    // Must include the extremes the figure labels.
    bool has_5_100 = false;
    bool has_50_1 = false;
    for (const auto &pt : sweep) {
        if (pt.i_load.value() == 0.005 && pt.t_pulse.value() == 0.1)
            has_5_100 = true;
        if (pt.i_load.value() == 0.05 && pt.t_pulse.value() == 0.001)
            has_50_1 = true;
    }
    EXPECT_TRUE(has_5_100);
    EXPECT_TRUE(has_50_1);
}

TEST(Library, Figure6SweepExcludesOneMsPoints)
{
    const auto sweep = load::figure6Sweep();
    EXPECT_EQ(sweep.size(), 6u);
    for (const auto &pt : sweep)
        EXPECT_GE(pt.t_pulse.value(), 0.01);
}

TEST(Library, GestureMatchesPaperPeakAndWidth)
{
    const auto p = load::gestureSensor();
    EXPECT_DOUBLE_EQ(p.peakCurrent().value(), 0.025);
    EXPECT_NEAR(p.duration().value(), 3.5e-3, 1e-12);
}

TEST(Library, BleMatchesPaperPeakAndWidth)
{
    const auto p = load::bleRadio();
    EXPECT_DOUBLE_EQ(p.peakCurrent().value(), 0.013);
    EXPECT_NEAR(p.duration().value(), 17e-3, 1e-12);
}

TEST(Library, MnistMatchesPaperLoad)
{
    const auto p = load::mnistCompute();
    EXPECT_DOUBLE_EQ(p.peakCurrent().value(), 0.005);
    EXPECT_NEAR(p.duration().value(), 1.1, 1e-12);
}

TEST(Library, ImuReadFrontLoadsItsBurst)
{
    const auto p = load::imuRead();
    // Burst first, tail after: peak in the first segment.
    EXPECT_DOUBLE_EQ(p.segments().front().current.value(),
                     p.peakCurrent().value());
    EXPECT_GT(p.peakCurrent().value(),
              p.segments().back().current.value() * 3);
}

TEST(Library, BleSendListenAppendsListenWindow)
{
    const auto p = load::bleSendListen(2.0_s);
    EXPECT_NEAR(p.duration().value(), 17e-3 + 2.0, 1e-9);
    // Listen current is low-power.
    EXPECT_LT(p.segments().back().current.value(), 0.002);
}

TEST(Library, MicSampleCoversSampleWindow)
{
    const auto p = load::micSample();
    // 256 samples at 12 kHz.
    EXPECT_NEAR(p.duration().value(), 256.0 / 12000.0, 1e-9);
}

TEST(Library, BackgroundTasksAreLowPower)
{
    EXPECT_LT(load::photoSense().peakCurrent().value(), 0.005);
    EXPECT_LT(load::fftCompute().peakCurrent().value(), 0.005);
}

} // namespace
