/** @file Unit tests for current profiles and sampled traces. */

#include <gtest/gtest.h>

#include "load/profile.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;
using load::CurrentProfile;
using load::SampledTrace;
using load::Segment;

CurrentProfile
pulseTail()
{
    return CurrentProfile("pulse_tail", {{10.0_ms, 50.0_mA},
                                         {100.0_ms, 1.5_mA}});
}

TEST(Profile, EmptyProfileBasics)
{
    const CurrentProfile p;
    EXPECT_TRUE(p.empty());
    EXPECT_DOUBLE_EQ(p.duration().value(), 0.0);
    EXPECT_DOUBLE_EQ(p.currentAt(Seconds(0.0)).value(), 0.0);
    EXPECT_DOUBLE_EQ(p.peakCurrent().value(), 0.0);
    EXPECT_DOUBLE_EQ(p.meanCurrent().value(), 0.0);
}

TEST(Profile, DurationSumsSegments)
{
    EXPECT_NEAR(pulseTail().duration().value(), 0.110, 1e-12);
}

TEST(Profile, CurrentAtSelectsSegment)
{
    const CurrentProfile p = pulseTail();
    EXPECT_DOUBLE_EQ(p.currentAt(Seconds(0.005)).value(), 0.05);
    EXPECT_DOUBLE_EQ(p.currentAt(Seconds(0.05)).value(), 0.0015);
    // Outside the profile: zero.
    EXPECT_DOUBLE_EQ(p.currentAt(Seconds(-1.0)).value(), 0.0);
    EXPECT_DOUBLE_EQ(p.currentAt(Seconds(0.2)).value(), 0.0);
}

TEST(Profile, BoundaryBelongsToLaterSegment)
{
    const CurrentProfile p = pulseTail();
    EXPECT_DOUBLE_EQ(p.currentAt(Seconds(0.010)).value(), 0.0015);
}

TEST(Profile, ChargeAndEnergy)
{
    const CurrentProfile p = pulseTail();
    const double q = 0.05 * 0.01 + 0.0015 * 0.1;
    EXPECT_NEAR(p.charge().value(), q, 1e-12);
    EXPECT_NEAR(p.energyAt(Volts(2.55)).value(), q * 2.55, 1e-12);
}

TEST(Profile, PeakAndMeanCurrent)
{
    const CurrentProfile p = pulseTail();
    EXPECT_DOUBLE_EQ(p.peakCurrent().value(), 0.05);
    EXPECT_NEAR(p.meanCurrent().value(), p.charge().value() / 0.110,
                1e-12);
}

TEST(Profile, WidestPulseAboveThreshold)
{
    const CurrentProfile p = pulseTail();
    EXPECT_NEAR(p.widestPulseAbove(10.0_mA).value(), 0.010, 1e-12);
    // Low threshold: both segments qualify contiguously.
    EXPECT_NEAR(p.widestPulseAbove(1.0_mA).value(), 0.110, 1e-12);
    // Higher than the peak: nothing qualifies.
    EXPECT_DOUBLE_EQ(p.widestPulseAbove(60.0_mA).value(), 0.0);
}

TEST(Profile, WidestPulseBridgesEqualSegments)
{
    const CurrentProfile p("split", {{5.0_ms, 20.0_mA},
                                     {5.0_ms, 25.0_mA},
                                     {5.0_ms, 1.0_mA},
                                     {5.0_ms, 30.0_mA}});
    EXPECT_NEAR(p.widestPulseAbove(10.0_mA).value(), 0.010, 1e-12);
}

TEST(Profile, ThenConcatenates)
{
    const CurrentProfile a("a", {{1.0_ms, 1.0_mA}});
    const CurrentProfile b("b", {{2.0_ms, 2.0_mA}});
    const CurrentProfile ab = a.then(b);
    EXPECT_NEAR(ab.duration().value(), 3e-3, 1e-12);
    EXPECT_DOUBLE_EQ(ab.currentAt(Seconds(2e-3)).value(), 0.002);
    EXPECT_EQ(ab.name(), "a+b");
}

TEST(Profile, RepeatTiles)
{
    const CurrentProfile p("p", {{1.0_ms, 1.0_mA}});
    const CurrentProfile p3 = p.repeat(3);
    EXPECT_NEAR(p3.duration().value(), 3e-3, 1e-12);
    EXPECT_EQ(p3.segments().size(), 3u);
    EXPECT_THROW(p.repeat(0), culpeo::log::FatalError);
}

TEST(Profile, ScaledMultipliesCurrents)
{
    const CurrentProfile p = pulseTail().scaled(2.0);
    EXPECT_DOUBLE_EQ(p.peakCurrent().value(), 0.1);
    EXPECT_THROW(pulseTail().scaled(-1.0), culpeo::log::FatalError);
}

TEST(Profile, RenamedKeepsShape)
{
    const CurrentProfile p = pulseTail().renamed("other");
    EXPECT_EQ(p.name(), "other");
    EXPECT_EQ(p.segments().size(), 2u);
}

TEST(Profile, Validation)
{
    EXPECT_THROW(CurrentProfile("bad", {{Seconds(0.0), Amps(1.0)}}),
                 culpeo::log::FatalError);
    EXPECT_THROW(CurrentProfile("bad", {{Seconds(1.0), Amps(-1.0)}}),
                 culpeo::log::FatalError);
}

TEST(SampledTrace, SamplesAtRate)
{
    const SampledTrace trace =
        SampledTrace::fromProfile(pulseTail(), Hertz(1000.0));
    EXPECT_EQ(trace.size(), 110u);
    EXPECT_DOUBLE_EQ(trace[0].value(), 0.05);
    EXPECT_DOUBLE_EQ(trace[50].value(), 0.0015);
    EXPECT_NEAR(trace.duration().value(), 0.110, 1e-9);
}

TEST(SampledTrace, MidPeriodSamplingAvoidsEdges)
{
    // A 1 ms profile sampled at 1 kHz takes exactly one sample, taken at
    // 0.5 ms (mid-period) rather than at the ambiguous edge.
    const CurrentProfile p("edge", {{1.0_ms, 10.0_mA}});
    const SampledTrace trace = SampledTrace::fromProfile(p, Hertz(1000.0));
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_DOUBLE_EQ(trace[0].value(), 0.01);
}

TEST(SampledTrace, ChargePreservedAtHighRate)
{
    const SampledTrace trace =
        SampledTrace::fromProfile(pulseTail(), Hertz(125e3));
    double q = 0.0;
    for (std::size_t i = 0; i < trace.size(); ++i)
        q += trace[i].value() * trace.samplePeriod().value();
    EXPECT_NEAR(q, pulseTail().charge().value(), 1e-5);
}

TEST(SampledTrace, Validation)
{
    EXPECT_THROW(SampledTrace(Hertz(0.0), {}), culpeo::log::FatalError);
}

} // namespace
