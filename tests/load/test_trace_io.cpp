/** @file Unit tests for current-trace file I/O. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/vsafe_pg.hpp"
#include "load/library.hpp"
#include "load/trace_io.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;
using load::SampledTrace;
using load::loadTraceCsv;
using load::loadTraceCsvChecked;
using load::profileFromTrace;
using load::saveTraceCsv;
using util::CsvError;
using util::CsvErrorCode;
using util::Expected;

class TraceIoTest : public ::testing::Test
{
  protected:
    std::string path_;

    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "culpeo_trace_test.csv";
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    void
    writeFile(const std::string &content) const
    {
        std::ofstream out(path_);
        out << content;
    }
};

TEST_F(TraceIoTest, RoundTripIsExact)
{
    const SampledTrace original = SampledTrace::fromProfile(
        load::pulseWithCompute(25.0_mA, 10.0_ms), Hertz(125e3));
    saveTraceCsv(original, path_);
    const SampledTrace loaded = loadTraceCsv(path_);

    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_DOUBLE_EQ(loaded.rate().value(), original.rate().value());
    for (std::size_t i = 0; i < loaded.size(); ++i)
        EXPECT_DOUBLE_EQ(loaded[i].value(), original[i].value());
}

TEST_F(TraceIoTest, LoadedTraceFeedsCulpeoPgIdentically)
{
    const auto model = core::modelFromConfig(sim::capybaraConfig());
    const SampledTrace original = SampledTrace::fromProfile(
        load::uniform(25.0_mA, 10.0_ms), Hertz(125e3));
    saveTraceCsv(original, path_);
    const double from_memory =
        core::culpeoPg(original, model).vsafe.value();
    const double from_disk =
        core::culpeoPg(loadTraceCsv(path_), model).vsafe.value();
    EXPECT_DOUBLE_EQ(from_memory, from_disk);
}

TEST_F(TraceIoTest, MissingFileIsFatal)
{
    EXPECT_THROW(loadTraceCsv("/nonexistent/trace.csv"),
                 log::FatalError);
}

TEST_F(TraceIoTest, BadHeaderIsFatal)
{
    writeFile("rate,125000\n0.001\n");
    EXPECT_THROW(loadTraceCsv(path_), log::FatalError);
}

TEST_F(TraceIoTest, NonPositiveRateIsFatal)
{
    writeFile("sample_rate_hz,0\n0.001\n");
    EXPECT_THROW(loadTraceCsv(path_), log::FatalError);
}

TEST_F(TraceIoTest, MalformedSampleIsFatal)
{
    writeFile("sample_rate_hz,1000\n0.001\nbogus\n");
    EXPECT_THROW(loadTraceCsv(path_), log::FatalError);
}

TEST_F(TraceIoTest, TrailingCharactersAreFatal)
{
    writeFile("sample_rate_hz,1000\n0.001 extra\n");
    EXPECT_THROW(loadTraceCsv(path_), log::FatalError);
}

TEST_F(TraceIoTest, NegativeSampleIsFatal)
{
    writeFile("sample_rate_hz,1000\n-0.5\n");
    EXPECT_THROW(loadTraceCsv(path_), log::FatalError);
}

TEST_F(TraceIoTest, EmptyLinesSkipped)
{
    writeFile("sample_rate_hz,1000\n0.001\n\n0.002\n");
    const SampledTrace trace = loadTraceCsv(path_);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_DOUBLE_EQ(trace[1].value(), 0.002);
}

TEST_F(TraceIoTest, CheckedLoaderTypesEveryMalformedClass)
{
    struct Case
    {
        const char *content;
        CsvErrorCode code;
        std::size_t line;
    };
    const Case cases[] = {
        {"rate,125000\n0.001\n", CsvErrorCode::BadHeader, 1},
        {"sample_rate_hz\n0.001\n", CsvErrorCode::ShortRow, 1},
        {"sample_rate_hz,fast\n0.001\n", CsvErrorCode::BadNumber, 1},
        {"sample_rate_hz,0\n0.001\n", CsvErrorCode::BadValue, 1},
        {"sample_rate_hz,1000\n0.001\nbogus\n", CsvErrorCode::BadNumber,
         3},
        {"sample_rate_hz,1000\n0.001 extra\n", CsvErrorCode::BadNumber,
         2},
        {"sample_rate_hz,1000\n0.001,0.002\n",
         CsvErrorCode::MalformedRow, 2},
        {"sample_rate_hz,1000\n-0.5\n", CsvErrorCode::BadValue, 2},
        {"\n\n", CsvErrorCode::Empty, 0},
    };
    for (const Case &c : cases) {
        writeFile(c.content);
        const Expected<SampledTrace, CsvError> trace =
            loadTraceCsvChecked(path_);
        ASSERT_FALSE(trace.ok()) << c.content;
        EXPECT_EQ(trace.error().code, c.code) << c.content;
        EXPECT_EQ(trace.error().line, c.line) << c.content;
    }
    const Expected<SampledTrace, CsvError> missing =
        loadTraceCsvChecked("/nonexistent/trace.csv");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().code, CsvErrorCode::Io);
}

TEST_F(TraceIoTest, CheckedLoaderBlankLineNumbersMatchTheEditor)
{
    writeFile("sample_rate_hz,1000\n0.001\n\n\nbogus\n");
    const Expected<SampledTrace, CsvError> trace =
        loadTraceCsvChecked(path_);
    ASSERT_FALSE(trace.ok());
    EXPECT_EQ(trace.error().code, CsvErrorCode::BadNumber);
    EXPECT_EQ(trace.error().line, 5U); // Blank lines still count.
}

TEST_F(TraceIoTest, TruncatedFixtureIsATypedError)
{
    // Checked-in regression artifact: a capture cut mid-exponent on
    // its last line (no trailing newline). The loader must locate the
    // damage instead of aborting the process.
    const std::string fixture =
        std::string(CULPEO_TEST_DATA_DIR) + "/truncated_trace.csv";
    const Expected<SampledTrace, CsvError> trace =
        loadTraceCsvChecked(fixture);
    ASSERT_FALSE(trace.ok());
    EXPECT_EQ(trace.error().code, CsvErrorCode::BadNumber);
    EXPECT_EQ(trace.error().line, 4U);
    EXPECT_NE(trace.error().message().find("0.0051e"),
              std::string::npos);
    EXPECT_THROW(loadTraceCsv(fixture), log::FatalError);
}

TEST(ProfileFromTrace, MergesEqualRuns)
{
    const SampledTrace trace(
        Hertz(1000.0),
        {Amps(0.01), Amps(0.01), Amps(0.01), Amps(0.002), Amps(0.002)});
    const auto profile = profileFromTrace(trace, "reconstructed");
    ASSERT_EQ(profile.segments().size(), 2u);
    EXPECT_NEAR(profile.segments()[0].duration.value(), 3e-3, 1e-12);
    EXPECT_DOUBLE_EQ(profile.segments()[0].current.value(), 0.01);
    EXPECT_NEAR(profile.segments()[1].duration.value(), 2e-3, 1e-12);
}

TEST(ProfileFromTrace, ToleranceMergesNoisyRuns)
{
    const SampledTrace trace(
        Hertz(1000.0),
        {Amps(0.0100), Amps(0.0101), Amps(0.0099), Amps(0.03)});
    const auto tight = profileFromTrace(trace, "t", Amps(1e-6));
    const auto loose = profileFromTrace(trace, "t", Amps(5e-4));
    EXPECT_EQ(tight.segments().size(), 4u);
    EXPECT_EQ(loose.segments().size(), 2u);
}

TEST(ProfileFromTrace, PreservesChargeAndDuration)
{
    const SampledTrace trace = SampledTrace::fromProfile(
        load::gestureSensor(), Hertz(10e3));
    const auto profile = profileFromTrace(trace, "gesture_replay");
    EXPECT_NEAR(profile.duration().value(), trace.duration().value(),
                1e-9);
    double q = 0.0;
    for (std::size_t i = 0; i < trace.size(); ++i)
        q += trace[i].value() * trace.samplePeriod().value();
    EXPECT_NEAR(profile.charge().value(), q, 1e-12);
}

} // namespace
