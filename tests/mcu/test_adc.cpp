/** @file Unit tests for the ADC models. */

#include <gtest/gtest.h>

#include "mcu/adc.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using mcu::Adc;
using mcu::AdcConfig;

TEST(Adc, FactoryConfigsMatchPaper)
{
    const AdcConfig isr = mcu::msp430OnChipAdc();
    EXPECT_EQ(isr.bits, 12u);
    EXPECT_DOUBLE_EQ(isr.sample_rate.value(), 1000.0);
    EXPECT_DOUBLE_EQ(isr.active_power.value(), 180e-6);

    const AdcConfig uarch = mcu::dedicated8BitAdc();
    EXPECT_EQ(uarch.bits, 8u);
    EXPECT_DOUBLE_EQ(uarch.sample_rate.value(), 100e3);
    EXPECT_DOUBLE_EQ(uarch.active_power.value(), 140e-9);
}

TEST(Adc, QuantizeAndBack)
{
    const Adc adc(mcu::dedicated8BitAdc());
    EXPECT_EQ(adc.maxCode(), 255u);
    // 2.56 V full scale, 8 bits: LSB = 10 mV.
    EXPECT_NEAR(adc.lsb().value(), 0.01, 1e-12);
    EXPECT_EQ(adc.quantize(Volts(1.60)), 160u);
    EXPECT_NEAR(adc.toVolts(160).value(), 1.60, 1e-12);
}

TEST(Adc, QuantizationTruncatesDown)
{
    const Adc adc(mcu::dedicated8BitAdc());
    // 1.609 V reads as code 160 -> 1.60 V: conservative for minima.
    EXPECT_EQ(adc.quantize(Volts(1.609)), 160u);
    EXPECT_NEAR(adc.read(Volts(1.609)).value(), 1.60, 1e-12);
}

TEST(Adc, ClampsOutOfRangeInputs)
{
    const Adc adc(mcu::dedicated8BitAdc());
    EXPECT_EQ(adc.quantize(Volts(-0.5)), 0u);
    EXPECT_EQ(adc.quantize(Volts(5.0)), adc.maxCode());
}

TEST(Adc, TwelveBitIsFinerThanEightBit)
{
    const Adc isr(mcu::msp430OnChipAdc());
    const Adc uarch(mcu::dedicated8BitAdc());
    EXPECT_LT(isr.lsb().value(), uarch.lsb().value());
    // Round-trip error is bounded by one LSB.
    const double v = 2.123456;
    EXPECT_NEAR(isr.read(Volts(v)).value(), v, isr.lsb().value());
    EXPECT_NEAR(uarch.read(Volts(v)).value(), v, uarch.lsb().value());
}

TEST(Adc, SupplyCurrentIsPowerOverVout)
{
    const Adc adc(mcu::msp430OnChipAdc());
    EXPECT_NEAR(adc.supplyCurrent(Volts(2.5)).value(), 180e-6 / 2.5,
                1e-12);
    EXPECT_THROW(adc.supplyCurrent(Volts(0.0)), culpeo::log::FatalError);
}

TEST(Adc, SamplePeriodInvertsRate)
{
    const Adc adc(mcu::msp430OnChipAdc());
    EXPECT_NEAR(adc.samplePeriod().value(), 1e-3, 1e-12);
}

TEST(Adc, ConfigValidation)
{
    AdcConfig bad = mcu::dedicated8BitAdc();
    bad.bits = 0;
    EXPECT_THROW(Adc{bad}, culpeo::log::FatalError);
    bad = mcu::dedicated8BitAdc();
    bad.vref = Volts(0.0);
    EXPECT_THROW(Adc{bad}, culpeo::log::FatalError);
}

TEST(McuPower, AdcOverheadFractionsMatchPaper)
{
    // ISR sampling: ~4.2% of MCU power; uArch: ~0.003% (Section V-D).
    const double mcu_power = mcu::msp430ActivePower().value();
    EXPECT_NEAR(180e-6 / mcu_power, 0.042, 0.003);
    EXPECT_NEAR(140e-9 / mcu_power, 0.00003, 0.00001);
}

} // namespace
