/** @file Unit tests for the Culpeo-uArch peripheral block (Table II). */

#include <gtest/gtest.h>

#include "mcu/uarch_block.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using mcu::CaptureMode;
using mcu::UArchBlock;

TEST(UArch, StartsDisabled)
{
    UArchBlock block;
    EXPECT_FALSE(block.enabled());
    EXPECT_FALSE(block.sampling());
    EXPECT_DOUBLE_EQ(block.supplyCurrent(Volts(2.55)).value(), 0.0);
}

TEST(UArch, PrepareSetsRegisterSentinels)
{
    UArchBlock block;
    block.configure(true);
    block.prepare(CaptureMode::Min);
    EXPECT_EQ(block.read(), 0xFF);
    block.prepare(CaptureMode::Max);
    EXPECT_EQ(block.read(), 0x00);
}

TEST(UArch, CommandsRequireEnable)
{
    UArchBlock block;
    EXPECT_THROW(block.prepare(CaptureMode::Min), culpeo::log::FatalError);
    EXPECT_THROW(block.sample(CaptureMode::Min), culpeo::log::FatalError);
}

TEST(UArch, MinTrackingCapturesDip)
{
    UArchBlock block;
    block.configure(true);
    block.prepare(CaptureMode::Min);
    block.sample(CaptureMode::Min);
    // Feed a dip: 2.3 -> 1.8 -> 2.2 V, ticking longer than the sample
    // period (10 us at 100 kHz).
    block.tick(Seconds(100e-6), Volts(2.3));
    block.tick(Seconds(100e-6), Volts(1.8));
    block.tick(Seconds(100e-6), Volts(2.2));
    EXPECT_NEAR(block.readVolts().value(), 1.8, 0.011);
}

TEST(UArch, MaxTrackingCapturesRebound)
{
    UArchBlock block;
    block.configure(true);
    block.prepare(CaptureMode::Max);
    block.sample(CaptureMode::Max);
    block.tick(Seconds(100e-6), Volts(1.9));
    block.tick(Seconds(100e-6), Volts(2.15));
    block.tick(Seconds(100e-6), Volts(2.05));
    EXPECT_NEAR(block.readVolts().value(), 2.15, 0.011);
}

TEST(UArch, ComparatorOnlyWritesOnImprovement)
{
    UArchBlock block;
    block.configure(true);
    block.prepare(CaptureMode::Min);
    block.sample(CaptureMode::Min);
    block.tick(Seconds(20e-6), Volts(2.0));
    const auto after_first = block.read();
    block.tick(Seconds(20e-6), Volts(2.4)); // Higher: no write in Min.
    EXPECT_EQ(block.read(), after_first);
}

TEST(UArch, SamplingRateGovernsCaptures)
{
    UArchBlock block;
    block.configure(true);
    block.prepare(CaptureMode::Min);
    block.sample(CaptureMode::Min);
    // A dip shorter than the 10 us sample period straddled between
    // sample instants can be missed entirely.
    block.tick(Seconds(4e-6), Volts(1.0));
    EXPECT_EQ(block.read(), 0xFF); // No conversion happened yet.
}

TEST(UArch, DisableStopsSampling)
{
    UArchBlock block;
    block.configure(true);
    block.prepare(CaptureMode::Min);
    block.sample(CaptureMode::Min);
    block.configure(false);
    block.tick(Seconds(1e-3), Volts(1.0));
    EXPECT_FALSE(block.sampling());
}

TEST(UArch, ConvertNowQuantizes)
{
    UArchBlock block;
    EXPECT_EQ(block.convertNow(Volts(1.60)), 160);
    EXPECT_EQ(block.convertNow(Volts(2.559)), 255);
}

TEST(UArch, SupplyCurrentWhileEnabled)
{
    UArchBlock block;
    block.configure(true);
    EXPECT_NEAR(block.supplyCurrent(Volts(2.55)).value(), 140e-9 / 2.55,
                1e-15);
}

TEST(UArch, Requires8BitAdc)
{
    EXPECT_THROW(UArchBlock{mcu::msp430OnChipAdc()}, culpeo::log::FatalError);
}

} // namespace
