/**
 * @file
 * Property-based tests of the output-booster operating-point solver,
 * swept across load currents and buffer voltages: power balance,
 * monotonicity, and the max-power-transfer collapse boundary.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/power_system.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using sim::BoosterDraw;
using sim::Capacitor;
using sim::CapacitorConfig;
using sim::OutputBooster;
using sim::OutputBoosterConfig;

struct OperatingPoint
{
    double voc;
    double load_a;
};

std::string
pointName(const ::testing::TestParamInfo<OperatingPoint> &info)
{
    return std::to_string(int(info.param.voc * 100)) + "cV_" +
           std::to_string(int(info.param.load_a * 1e3)) + "mA";
}

class BoosterGrid : public ::testing::TestWithParam<OperatingPoint>
{
  protected:
    OutputBooster booster_{OutputBoosterConfig{}};

    Capacitor
    capAt(double voc) const
    {
        Capacitor cap{sim::capybaraConfig().capacitor};
        cap.setOpenCircuitVoltage(Volts(voc));
        return cap;
    }
};

TEST_P(BoosterGrid, PowerBalanceAtOperatingPoint)
{
    const OperatingPoint p = GetParam();
    const Capacitor cap = capAt(p.voc);
    const BoosterDraw draw = booster_.computeDraw(cap, Amps(p.load_a));
    if (draw.collapsed)
        GTEST_SKIP() << "infeasible point";
    const double pout = booster_.vout().value() * p.load_a;
    const double pin = (draw.input_current.value() - 55e-6) *
                       draw.terminal_voltage.value();
    EXPECT_NEAR(pin * draw.efficiency, pout, pout * 0.02);
}

TEST_P(BoosterGrid, TerminalConsistentWithThevenin)
{
    const OperatingPoint p = GetParam();
    const Capacitor cap = capAt(p.voc);
    const BoosterDraw draw = booster_.computeDraw(cap, Amps(p.load_a));
    if (draw.collapsed)
        GTEST_SKIP();
    const double expected =
        cap.theveninVoltage().value() -
        draw.input_current.value() * cap.theveninResistance().value();
    EXPECT_NEAR(draw.terminal_voltage.value(), expected, 1e-9);
}

TEST_P(BoosterGrid, MoreLoadMoreInputCurrent)
{
    const OperatingPoint p = GetParam();
    const Capacitor cap = capAt(p.voc);
    const BoosterDraw lo = booster_.computeDraw(cap, Amps(p.load_a));
    const BoosterDraw hi =
        booster_.computeDraw(cap, Amps(p.load_a * 1.2));
    if (lo.collapsed || hi.collapsed)
        GTEST_SKIP();
    EXPECT_GT(hi.input_current.value(), lo.input_current.value());
}

TEST_P(BoosterGrid, HigherBufferVoltageLessCurrent)
{
    const OperatingPoint p = GetParam();
    const BoosterDraw lo =
        booster_.computeDraw(capAt(p.voc), Amps(p.load_a));
    const BoosterDraw hi =
        booster_.computeDraw(capAt(p.voc + 0.2), Amps(p.load_a));
    if (lo.collapsed || hi.collapsed)
        GTEST_SKIP();
    EXPECT_LT(hi.input_current.value(), lo.input_current.value());
}

TEST_P(BoosterGrid, CollapseMatchesMaxPowerTransfer)
{
    // The solver must report collapse iff the demanded input power
    // exceeds Voc^2 / (4 Rth) (within the efficiency iteration's slack).
    const OperatingPoint p = GetParam();
    const Capacitor cap = capAt(p.voc);
    const BoosterDraw draw = booster_.computeDraw(cap, Amps(p.load_a));
    const double rth = cap.theveninResistance().value();
    const double max_power = p.voc * p.voc / (4.0 * rth);
    const double pout = booster_.vout().value() * p.load_a;
    // Use the reported efficiency for the demanded input power.
    const double pin = pout / std::max(draw.efficiency, 0.3);
    if (pin > max_power * 1.1) {
        EXPECT_TRUE(draw.collapsed);
    } else if (pin < max_power * 0.9 &&
               draw.terminal_voltage.value() > 0.5) {
        EXPECT_FALSE(draw.collapsed);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BoosterGrid,
    ::testing::Values(OperatingPoint{2.5, 0.005}, OperatingPoint{2.5, 0.05},
                      OperatingPoint{2.2, 0.01}, OperatingPoint{2.2, 0.08},
                      OperatingPoint{1.9, 0.005}, OperatingPoint{1.9, 0.05},
                      OperatingPoint{1.7, 0.02}, OperatingPoint{1.7, 0.1},
                      OperatingPoint{1.2, 0.02}, OperatingPoint{1.0, 0.1}),
    pointName);

} // namespace
