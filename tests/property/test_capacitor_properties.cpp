/**
 * @file
 * Property-based tests of the two-branch capacitor model, swept across
 * a (load current, step size) grid with TEST_P: charge conservation,
 * terminal-voltage ordering, rebound monotonicity, and apparent-ESR
 * bounds must hold at every operating point.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "harness/profiling.hpp"
#include "sim/capacitor.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using sim::Capacitor;
using sim::CapacitorConfig;

struct GridPoint
{
    double current_a;
    double dt_s;
};

std::string
pointName(const ::testing::TestParamInfo<GridPoint> &info)
{
    return std::to_string(int(info.param.current_a * 1e3)) + "mA_" +
           std::to_string(int(info.param.dt_s * 1e6)) + "us";
}

class CapacitorGrid : public ::testing::TestWithParam<GridPoint>
{
  protected:
    CapacitorConfig cfg_ = sim::capybaraConfig().capacitor;
};

TEST_P(CapacitorGrid, ChargeConservation)
{
    const GridPoint p = GetParam();
    Capacitor cap(cfg_);
    cap.setOpenCircuitVoltage(Volts(2.5));
    const double horizon = 0.2;
    double elapsed = 0.0;
    while (elapsed < horizon) {
        cap.step(Seconds(p.dt_s), Amps(p.current_a));
        elapsed += p.dt_s;
    }
    // Charge-weighted OCV must fall by exactly q/C (+ leakage).
    const double expected =
        2.5 - (p.current_a * elapsed +
               cfg_.leakage.value() * elapsed) /
                  0.045;
    EXPECT_NEAR(cap.openCircuitVoltage().value(), expected,
                std::max(2e-3, expected * 1e-3));
}

TEST_P(CapacitorGrid, TerminalNeverAboveOpenCircuitUnderLoad)
{
    const GridPoint p = GetParam();
    if (p.current_a <= 0.0)
        GTEST_SKIP();
    Capacitor cap(cfg_);
    cap.setOpenCircuitVoltage(Volts(2.5));
    for (int i = 0; i < 500; ++i) {
        cap.step(Seconds(p.dt_s), Amps(p.current_a));
        EXPECT_LE(cap.terminalVoltage(Amps(p.current_a)).value(),
                  cap.openCircuitVoltage().value() + 1e-12);
    }
}

TEST_P(CapacitorGrid, DropBoundedByBranchResistances)
{
    const GridPoint p = GetParam();
    if (p.current_a <= 0.0)
        GTEST_SKIP();
    Capacitor cap(cfg_);
    cap.setOpenCircuitVoltage(Volts(2.5));
    const double r_min = cfg_.instantaneousEsr().value();
    const double r_max = cfg_.sustainedEsr().value();
    double elapsed = 0.0;
    while (elapsed < 0.3) {
        cap.step(Seconds(p.dt_s), Amps(p.current_a));
        elapsed += p.dt_s;
        const double drop = cap.openCircuitVoltage().value() -
                            cap.terminalVoltage(Amps(p.current_a)).value();
        const double r_apparent = drop / p.current_a;
        EXPECT_GE(r_apparent, r_min - 1e-6);
        EXPECT_LE(r_apparent, r_max + 1e-6);
    }
}

TEST_P(CapacitorGrid, ReboundIsMonotone)
{
    const GridPoint p = GetParam();
    if (p.current_a <= 0.0)
        GTEST_SKIP();
    Capacitor cap(cfg_);
    cap.setOpenCircuitVoltage(Volts(2.5));
    // Load long enough to split the branches, then release.
    double elapsed = 0.0;
    while (elapsed < 0.1) {
        cap.step(Seconds(p.dt_s), Amps(p.current_a));
        elapsed += p.dt_s;
    }
    CapacitorConfig no_leak = cfg_;
    // Use the same state but watch the unloaded terminal recover.
    double prev = cap.terminalVoltage(Amps(0.0)).value();
    for (int i = 0; i < 2000; ++i) {
        cap.step(Seconds(1e-4), Amps(0.0));
        const double now = cap.terminalVoltage(Amps(0.0)).value();
        EXPECT_GE(now, prev - 1e-6);
        prev = now;
    }
    (void)no_leak;
}

TEST_P(CapacitorGrid, SubSteppingAgreesWithFineStepping)
{
    const GridPoint p = GetParam();
    Capacitor coarse(cfg_);
    Capacitor fine(cfg_);
    coarse.setOpenCircuitVoltage(Volts(2.4));
    fine.setOpenCircuitVoltage(Volts(2.4));
    // Integrate the same 0.5 s with one coarse call vs many fine calls.
    coarse.step(Seconds(0.5), Amps(p.current_a));
    for (int i = 0; i < 5000; ++i)
        fine.step(Seconds(1e-4), Amps(p.current_a));
    EXPECT_NEAR(coarse.openCircuitVoltage().value(),
                fine.openCircuitVoltage().value(), 5e-3);
    EXPECT_NEAR(coarse.bulkVoltage().value(), fine.bulkVoltage().value(),
                1e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CapacitorGrid,
    ::testing::Values(GridPoint{0.001, 5e-5}, GridPoint{0.001, 1e-3},
                      GridPoint{0.01, 5e-5}, GridPoint{0.01, 1e-3},
                      GridPoint{0.05, 5e-5}, GridPoint{0.05, 2e-4},
                      GridPoint{0.1, 5e-5}),
    pointName);

/** Apparent ESR measured on the simulator matches the analytic form
 *  across a width sweep (property over widths). */
class EsrWidthSweep : public ::testing::TestWithParam<double>
{};

TEST_P(EsrWidthSweep, MeasuredMatchesAnalytic)
{
    const auto cfg = sim::capybaraConfig().capacitor;
    const double width = GetParam();
    const Ohms measured = harness::measureApparentEsr(
        cfg, Amps(0.02), Seconds(width));
    const Ohms analytic = cfg.apparentEsrForWidth(Seconds(width));
    EXPECT_NEAR(measured.value(), analytic.value(),
                analytic.value() * 0.12)
        << "width " << width;
}

INSTANTIATE_TEST_SUITE_P(Widths, EsrWidthSweep,
                         ::testing::Values(5e-4, 1e-3, 3e-3, 1e-2, 3e-2,
                                           1e-1, 3e-1));

} // namespace
