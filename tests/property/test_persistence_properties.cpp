/**
 * @file
 * Property-based tests of profile-table persistence: a TEST_P sweep
 * flips a bit at many positions across the image and requires every
 * corruption to be rejected — the torn-FRAM-write guarantee — plus
 * round-trip invariance across table sizes.
 */

#include <gtest/gtest.h>

#include "core/persistence.hpp"
#include "util/random.hpp"

namespace {

using namespace culpeo;
using culpeo::units::Volts;
using core::ProfileTable;
using core::RProfile;
using core::RResult;

ProfileTable
tableWithEntries(unsigned profiles, unsigned results)
{
    ProfileTable table;
    util::Rng rng(profiles * 31 + results);
    for (unsigned i = 0; i < profiles; ++i) {
        RProfile profile;
        profile.vstart = Volts(rng.uniform(2.0, 2.56));
        profile.vmin = Volts(rng.uniform(1.6, 2.0));
        profile.vfinal = Volts(rng.uniform(2.0, 2.5));
        table.storeProfile(i, i % 3, profile);
    }
    for (unsigned i = 0; i < results; ++i) {
        RResult result;
        result.vsafe = Volts(rng.uniform(1.7, 2.5));
        result.vsafe_energy = Volts(rng.uniform(1.6, 2.0));
        result.vdelta_safe = Volts(rng.uniform(0.0, 0.5));
        result.vdelta_observed = Volts(rng.uniform(0.0, 0.4));
        table.storeResult(i, i % 2, result);
    }
    return table;
}

class BitFlipSweep : public ::testing::TestWithParam<double>
{};

TEST_P(BitFlipSweep, AnySingleBitFlipIsRejected)
{
    const auto image = core::saveTable(tableWithEntries(5, 4));
    // Parameter selects a relative position within the image.
    const std::size_t index =
        std::size_t(GetParam() * double(image.size() - 1));
    for (int bit = 0; bit < 8; ++bit) {
        auto corrupted = image;
        corrupted[index] ^= std::uint8_t(1u << bit);
        EXPECT_FALSE(core::imageIsValid(corrupted))
            << "byte " << index << " bit " << bit
            << " corruption was accepted";
    }
}

INSTANTIATE_TEST_SUITE_P(Positions, BitFlipSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.4, 0.5,
                                           0.6, 0.75, 0.9, 1.0));

class SizeSweep
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{};

TEST_P(SizeSweep, RoundTripPreservesCounts)
{
    const auto [profiles, results] = GetParam();
    const ProfileTable original = tableWithEntries(profiles, results);
    const auto image = core::saveTable(original);
    EXPECT_TRUE(core::imageIsValid(image));
    const ProfileTable restored = core::loadTable(image);
    EXPECT_EQ(restored.profileCount(), original.profileCount());
    EXPECT_EQ(restored.resultCount(), original.resultCount());
    // Spot-check one representative entry of each kind.
    if (profiles > 0) {
        const auto a = original.profile(0, 0);
        const auto b = restored.profile(0, 0);
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a.has_value()) {
            EXPECT_DOUBLE_EQ(a->vmin.value(), b->vmin.value());
        }
    }
    if (results > 0) {
        const auto a = original.result(0, 0);
        const auto b = restored.result(0, 0);
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a.has_value()) {
            EXPECT_DOUBLE_EQ(a->vsafe.value(), b->vsafe.value());
        }
    }
}

TEST_P(SizeSweep, TruncationAnywhereIsRejected)
{
    const auto [profiles, results] = GetParam();
    const auto image = core::saveTable(tableWithEntries(profiles, results));
    for (std::size_t keep : {image.size() - 1, image.size() / 2,
                             std::size_t(5)}) {
        auto truncated = image;
        truncated.resize(keep);
        EXPECT_FALSE(core::imageIsValid(truncated))
            << "truncated to " << keep << " bytes was accepted";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SizeSweep,
    ::testing::Values(std::make_pair(0u, 0u), std::make_pair(1u, 0u),
                      std::make_pair(0u, 1u), std::make_pair(3u, 2u),
                      std::make_pair(16u, 16u),
                      std::make_pair(100u, 50u)));

} // namespace
