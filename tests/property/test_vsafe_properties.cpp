/**
 * @file
 * Property-based tests of the Vsafe calculations, swept with TEST_P:
 * monotonicity of Culpeo-PG in current, duration, and aging; safety and
 * ordering invariants of Culpeo-R; and composition laws of Vsafe_multi.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/vsafe_multi.hpp"
#include "core/vsafe_pg.hpp"
#include "core/vsafe_r.hpp"
#include "load/library.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

core::PowerSystemModel
model()
{
    return core::modelFromConfig(sim::capybaraConfig());
}

// --- Culpeo-PG monotonicity over a current sweep ---

class PgCurrentSweep : public ::testing::TestWithParam<double>
{};

TEST_P(PgCurrentSweep, MoreCurrentNeedsMoreVoltage)
{
    const double ma = GetParam();
    const auto m = model();
    const double lo =
        core::culpeoPg(load::uniform(Amps(ma * 1e-3), 10.0_ms), m)
            .vsafe.value();
    const double hi =
        core::culpeoPg(load::uniform(Amps(ma * 1.5e-3), 10.0_ms), m)
            .vsafe.value();
    EXPECT_GT(hi, lo);
}

TEST_P(PgCurrentSweep, LongerPulseNeedsMoreVoltage)
{
    const double ma = GetParam();
    const auto m = model();
    const double lo =
        core::culpeoPg(load::uniform(Amps(ma * 1e-3), 5.0_ms), m)
            .vsafe.value();
    const double hi =
        core::culpeoPg(load::uniform(Amps(ma * 1e-3), 50.0_ms), m)
            .vsafe.value();
    EXPECT_GT(hi, lo);
}

TEST_P(PgCurrentSweep, AgedEsrNeedsMoreVoltage)
{
    const double ma = GetParam();
    auto aged_cfg = sim::capybaraConfig();
    aged_cfg.capacitor.esr_multiplier = 1.7;
    const auto fresh = model();
    const auto aged = core::modelFromConfig(aged_cfg);
    const auto profile = load::uniform(Amps(ma * 1e-3), 10.0_ms);
    EXPECT_GT(core::culpeoPg(profile, aged).vsafe.value(),
              core::culpeoPg(profile, fresh).vsafe.value());
}

TEST_P(PgCurrentSweep, VsafeWithinOperatingWindowForFeasibleLoads)
{
    const double ma = GetParam();
    const auto m = model();
    const auto result =
        core::culpeoPg(load::uniform(Amps(ma * 1e-3), 10.0_ms), m);
    EXPECT_GT(result.vsafe.value(), m.voff.value());
    EXPECT_LT(result.vsafe.value(), m.vhigh.value());
    EXPECT_GT(result.vdelta.value(), 0.0);
    EXPECT_GT(result.esr_used.value(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Currents, PgCurrentSweep,
                         ::testing::Values(2.0, 5.0, 10.0, 20.0, 35.0,
                                           50.0));

// --- Culpeo-R ordering invariants over a drop sweep ---

class RDropSweep : public ::testing::TestWithParam<double>
{};

TEST_P(RDropSweep, VsafeComponentsOrdered)
{
    const double drop = GetParam();
    core::RProfile profile;
    profile.vstart = Volts(2.50);
    profile.vmin = Volts(2.45 - drop);
    profile.vfinal = Volts(2.45);
    const core::RResult r = core::culpeoR(profile, model());
    // The extrapolated drop exceeds the observed one (efficiency falls
    // toward Voff), and Vsafe covers both terms.
    EXPECT_GE(r.vdelta_safe.value(), r.vdelta_observed.value() - 1e-12);
    EXPECT_GE(r.vsafe_energy.value(), 1.6 - 1e-12);
    EXPECT_NEAR(r.vsafe.value(),
                r.vsafe_energy.value() + r.vdelta_safe.value(), 1e-12);
}

TEST_P(RDropSweep, VsafeMonotoneInDrop)
{
    const double drop = GetParam();
    const auto m = model();
    auto vsafe_for = [&](double d) {
        core::RProfile profile;
        profile.vstart = Volts(2.50);
        profile.vmin = Volts(2.45 - d);
        profile.vfinal = Volts(2.45);
        return core::culpeoR(profile, m).vsafe.value();
    };
    EXPECT_GT(vsafe_for(drop + 0.05), vsafe_for(drop));
}

INSTANTIATE_TEST_SUITE_P(Drops, RDropSweep,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.4,
                                           0.6));

// --- Vsafe_multi composition laws over random-ish task sets ---

class MultiLaw : public ::testing::TestWithParam<unsigned>
{
  protected:
    std::vector<core::TaskRequirement>
    taskSet(unsigned seed) const
    {
        std::vector<core::TaskRequirement> tasks;
        // Deterministic pseudo-random small task set.
        unsigned state = seed * 2654435761u + 17;
        const unsigned count = 2 + seed % 4;
        for (unsigned i = 0; i < count; ++i) {
            state = state * 1664525u + 1013904223u;
            const double e = double(state % 100) / 1000.0;      // 0..0.1
            state = state * 1664525u + 1013904223u;
            const double d = double(state % 300) / 1000.0;      // 0..0.3
            core::TaskRequirement req;
            req.name = "t" + std::to_string(i);
            req.v_energy = Volts(e);
            req.vdelta = Volts(d);
            tasks.push_back(req);
        }
        return tasks;
    }
};

TEST_P(MultiLaw, SequenceDominatesEveryMember)
{
    const auto tasks = taskSet(GetParam());
    const auto multi = core::vsafeMulti(tasks, Volts(1.6));
    for (const auto &task : tasks) {
        const double single =
            core::vsafeMulti({task}, Volts(1.6)).vsafe_multi.value();
        // Running a task inside the sequence can only demand at least
        // as much as running it... as the final task (drop fully paid).
        EXPECT_GE(multi.vsafe_multi.value() + 1e-12,
                  task.v_energy.value() + 1.6);
        (void)single;
    }
}

TEST_P(MultiLaw, AppendingATaskNeverLowersTheRequirement)
{
    auto tasks = taskSet(GetParam());
    const double before =
        core::vsafeMulti(tasks, Volts(1.6)).vsafe_multi.value();
    core::TaskRequirement extra;
    extra.name = "extra";
    extra.v_energy = Volts(0.02);
    extra.vdelta = Volts(0.05);
    tasks.push_back(extra);
    const double after =
        core::vsafeMulti(tasks, Volts(1.6)).vsafe_multi.value();
    EXPECT_GE(after, before - 1e-12);
}

TEST_P(MultiLaw, ExactNeverAboveAdditive)
{
    const auto tasks = taskSet(GetParam());
    EXPECT_LE(core::vsafeMultiExact(tasks, Volts(1.6))
                  .vsafe_multi.value(),
              core::vsafeMulti(tasks, Volts(1.6)).vsafe_multi.value() +
                  1e-9);
}

TEST_P(MultiLaw, PenaltiesAreNonNegativeAndBounded)
{
    const auto tasks = taskSet(GetParam());
    const auto multi = core::vsafeMulti(tasks, Volts(1.6));
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        EXPECT_GE(multi.penalties[i].value(), 0.0);
        EXPECT_LE(multi.penalties[i].value(),
                  tasks[i].vdelta.value() + 1e-12);
    }
}

TEST_P(MultiLaw, SummationFormHolds)
{
    // Vsafe_multi = sum V(E_i) + sum penalty_i + Voff (Section IV-A).
    const auto tasks = taskSet(GetParam());
    const auto multi = core::vsafeMulti(tasks, Volts(1.6));
    double sum = 1.6;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        sum += tasks[i].v_energy.value();
        sum += multi.penalties[i].value();
    }
    EXPECT_NEAR(multi.vsafe_multi.value(), sum, 1e-12);
}

TEST_P(MultiLaw, PermutationInvariantWhenDropsEqual)
{
    // With every Vdelta_i equal, only the final task pays a penalty
    // (every follower requirement already sits above the shared drop
    // floor), so the composition collapses to Voff + d + sum V(E_i) —
    // independent of task order, for both formulations.
    auto tasks = taskSet(GetParam());
    const Volts d(0.15);
    double energy_sum = 0.0;
    for (auto &task : tasks) {
        task.vdelta = d;
        energy_sum += task.v_energy.value();
    }

    const double original =
        core::vsafeMulti(tasks, Volts(1.6)).vsafe_multi.value();
    EXPECT_NEAR(original, 1.6 + d.value() + energy_sum, 1e-12);

    auto reversed = tasks;
    std::reverse(reversed.begin(), reversed.end());
    EXPECT_NEAR(core::vsafeMulti(reversed, Volts(1.6))
                    .vsafe_multi.value(),
                original, 1e-12);

    auto rotated = tasks;
    std::rotate(rotated.begin(), rotated.begin() + 1, rotated.end());
    EXPECT_NEAR(core::vsafeMulti(rotated, Volts(1.6))
                    .vsafe_multi.value(),
                original, 1e-12);

    const double exact =
        core::vsafeMultiExact(tasks, Volts(1.6)).vsafe_multi.value();
    EXPECT_NEAR(core::vsafeMultiExact(reversed, Volts(1.6))
                    .vsafe_multi.value(),
                exact, 1e-9);
    EXPECT_NEAR(core::vsafeMultiExact(rotated, Volts(1.6))
                    .vsafe_multi.value(),
                exact, 1e-9);
}

TEST_P(MultiLaw, MonotoneInEveryDropTerm)
{
    // Vsafe_i = V(E_i) + max(Vsafe_{i+1}, Voff + Vdelta_i): raising any
    // task's worst-case drop can never lower the sequence requirement.
    const auto tasks = taskSet(GetParam());
    const double additive =
        core::vsafeMulti(tasks, Volts(1.6)).vsafe_multi.value();
    const double exact =
        core::vsafeMultiExact(tasks, Volts(1.6)).vsafe_multi.value();
    for (std::size_t j = 0; j < tasks.size(); ++j) {
        auto bumped = tasks;
        bumped[j].vdelta += Volts(0.05);
        EXPECT_GE(core::vsafeMulti(bumped, Volts(1.6))
                      .vsafe_multi.value(),
                  additive - 1e-12)
            << "raising vdelta of task " << j << " lowered the additive "
               "sequence requirement";
        EXPECT_GE(core::vsafeMultiExact(bumped, Volts(1.6))
                      .vsafe_multi.value(),
                  exact - 1e-12)
            << "raising vdelta of task " << j << " lowered the exact "
               "sequence requirement";
    }
}

TEST_P(MultiLaw, MonotoneInEveryEnergyTerm)
{
    const auto tasks = taskSet(GetParam());
    const double additive =
        core::vsafeMulti(tasks, Volts(1.6)).vsafe_multi.value();
    const double exact =
        core::vsafeMultiExact(tasks, Volts(1.6)).vsafe_multi.value();
    for (std::size_t j = 0; j < tasks.size(); ++j) {
        auto bumped = tasks;
        bumped[j].v_energy += Volts(0.02);
        // Non-strict: an earlier task whose Voff + Vdelta floor
        // dominates its follower requirement absorbs the bump.
        EXPECT_GE(core::vsafeMulti(bumped, Volts(1.6))
                      .vsafe_multi.value(),
                  additive - 1e-12)
            << "raising v_energy of task " << j << " lowered the "
               "additive sequence requirement";
        EXPECT_GE(core::vsafeMultiExact(bumped, Volts(1.6))
                      .vsafe_multi.value(),
                  exact - 1e-12)
            << "raising v_energy of task " << j << " lowered the exact "
               "sequence requirement";
    }
}

INSTANTIATE_TEST_SUITE_P(Sets, MultiLaw,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

} // namespace
