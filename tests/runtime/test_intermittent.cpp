/** @file Unit tests for the intermittent atomic-task runtime. */

#include <gtest/gtest.h>

#include <memory>

#include "fault/injector.hpp"
#include "harness/profiling.hpp"
#include "load/library.hpp"
#include "runtime/intermittent.hpp"
#include "sched/supervisor.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;
using runtime::AtomicTask;
using runtime::DispatchPolicy;
using runtime::ProgramResult;
using runtime::RuntimeOptions;
using runtime::runProgram;

std::vector<AtomicTask>
senseComputeSend()
{
    return {
        {1, "sense", load::imuRead()},
        {2, "compute", load::encrypt()},
        {3, "send", load::uniform(50.0_mA, 20.0_ms).renamed("send")},
    };
}

sim::Device
chargedDevice(const sim::ConstantHarvester *harvester)
{
    sim::Device device(sim::capybaraConfig());
    device.setHarvester(harvester);
    device.setBufferVoltage(Volts(2.56));
    device.forceOutputEnabled(true);
    return device;
}

TEST(IntermittentRuntime, FinishesEasyProgramWithoutFailures)
{
    const sim::ConstantHarvester harvester(Watts(3e-3));
    sim::Device device = chargedDevice(&harvester);
    RuntimeOptions options;
    const ProgramResult result =
        runProgram(device, senseComputeSend(), options);
    EXPECT_TRUE(result.finished);
    EXPECT_EQ(result.totalFailures(), 0u);
    for (const auto &stats : result.per_task) {
        EXPECT_EQ(stats.executions, 1u);
        EXPECT_EQ(stats.completions, 1u);
    }
}

TEST(IntermittentRuntime, OpportunisticReexecutesAfterBrownout)
{
    // Start mid-charge: the opportunistic runtime dispatches the radio
    // at a voltage that cannot survive its ESR drop, browns out, fully
    // recharges, and re-executes the task from its start (Figure 1a).
    const sim::ConstantHarvester harvester(Watts(10e-3));
    sim::Device device = chargedDevice(&harvester);
    device.setBufferVoltage(Volts(1.75));

    RuntimeOptions options;
    options.policy = DispatchPolicy::Opportunistic;
    const std::vector<AtomicTask> program = {
        {1, "radio", load::uniform(50.0_mA, 20.0_ms).renamed("radio")}};
    const ProgramResult result = runProgram(device, program, options);

    EXPECT_TRUE(result.finished);
    EXPECT_GE(result.per_task[0].failures, 1u);
    EXPECT_EQ(result.per_task[0].completions, 1u);
    EXPECT_GE(result.power_failures, 1u);
}

TEST(IntermittentRuntime, VsafeGatedAvoidsTheBrownout)
{
    const sim::ConstantHarvester harvester(Watts(10e-3));

    // Profile the radio task once so the gate has a Vsafe.
    core::Culpeo culpeo(core::modelFromConfig(sim::capybaraConfig()),
                        std::make_unique<core::UArchProfiler>());
    const auto radio = load::uniform(50.0_mA, 20.0_ms).renamed("radio");
    harness::profileTaskFrom(sim::capybaraConfig(), Volts(2.56), culpeo,
                             1, radio);

    sim::Device device = chargedDevice(&harvester);
    device.setBufferVoltage(Volts(1.75));

    RuntimeOptions options;
    options.policy = DispatchPolicy::VsafeGated;
    options.culpeo = &culpeo;
    const ProgramResult result =
        runProgram(device, {{1, "radio", radio}}, options);

    EXPECT_TRUE(result.finished);
    EXPECT_EQ(result.totalFailures(), 0u);
    EXPECT_EQ(result.power_failures, 0u);
}

TEST(IntermittentRuntime, DetectsNonterminatingTask)
{
    // A sustained 120 mA load cannot complete even from Vhigh on this
    // bank: the runtime must flag non-termination instead of looping.
    const sim::ConstantHarvester harvester(Watts(20e-3));
    sim::Device device = chargedDevice(&harvester);

    RuntimeOptions options;
    options.max_attempts_from_full = 3;
    const std::vector<AtomicTask> program = {
        {1, "hog", load::uniform(120.0_mA, 200.0_ms).renamed("hog")}};
    const ProgramResult result = runProgram(device, program, options);

    EXPECT_FALSE(result.finished);
    EXPECT_TRUE(result.nonterminating);
    EXPECT_EQ(result.stuck_task, "hog");
    EXPECT_GE(result.per_task[0].failures, 3u);
}

TEST(IntermittentRuntime, TimesOutWhenStarved)
{
    // No harvest and an empty buffer: nothing can ever run.
    sim::Device device(sim::capybaraConfig());
    device.setBufferVoltage(Volts(1.0));

    RuntimeOptions options;
    options.timeout = Seconds(2.0);
    const ProgramResult result =
        runProgram(device, senseComputeSend(), options);
    EXPECT_FALSE(result.finished);
    EXPECT_FALSE(result.nonterminating);
    // The device layer proves the recharge wait unsatisfiable (zero
    // harvest can never reach Vhigh) instead of idling to the timeout.
    EXPECT_TRUE(result.starved);
    EXPECT_EQ(result.stuck_task, "sense");
    EXPECT_FALSE(result.diagnostic.empty());
}

TEST(IntermittentRuntime, GatedRequiresCulpeo)
{
    sim::Device device(sim::capybaraConfig());
    RuntimeOptions options;
    options.policy = DispatchPolicy::VsafeGated;
    EXPECT_THROW(runProgram(device, senseComputeSend(), options),
                 log::FatalError);
}

TEST(IntermittentRuntime, ForcedBrownoutRebootsAndResumesTheTask)
{
    // An injected power failure mid-execution aborts the atomic task;
    // the runtime reboots (full hysteretic recharge) and re-executes it
    // from the start — the Figure 1a recovery path, forced rather than
    // electrical.
    const sim::ConstantHarvester harvester(Watts(20e-3));
    sim::Device device = chargedDevice(&harvester);

    fault::FaultPlan plan;
    plan.brownouts = {{Seconds(5e-3)}}; // Mid first execution.
    fault::FaultInjector injector(plan);
    device.setFaultHooks(&injector);

    RuntimeOptions options;
    const std::vector<AtomicTask> program = {
        {1, "radio", load::uniform(50.0_mA, 20.0_ms).renamed("radio")}};
    const ProgramResult result = runProgram(device, program, options);

    EXPECT_TRUE(result.finished);
    EXPECT_EQ(injector.firedBrownouts(), 1u);
    EXPECT_GE(result.power_failures, 1u);
    EXPECT_GE(result.per_task[0].executions, 2u);
    EXPECT_GE(result.per_task[0].failures, 1u);
    EXPECT_EQ(result.per_task[0].completions, 1u);
}

TEST(IntermittentRuntime, ForcedBrownoutMidProgramPreservesProgress)
{
    // A reboot in the middle of the program must not disturb already
    // completed tasks: only the interrupted task re-executes, and the
    // program still runs to completion.
    const sim::ConstantHarvester harvester(Watts(20e-3));
    sim::Device device = chargedDevice(&harvester);

    fault::FaultPlan plan;
    plan.brownouts = {{Seconds(2e-3)}};
    fault::FaultInjector injector(plan);
    device.setFaultHooks(&injector);

    RuntimeOptions options;
    const ProgramResult result =
        runProgram(device, senseComputeSend(), options);

    EXPECT_TRUE(result.finished);
    EXPECT_GE(result.power_failures, 1u);
    for (const auto &stats : result.per_task) {
        EXPECT_EQ(stats.completions, 1u) << stats.name;
        EXPECT_FALSE(stats.skipped) << stats.name;
    }
}

TEST(IntermittentRuntime, SupervisedForcedBrownoutStaysWithinBudget)
{
    // With a supervisor attached, the same forced brown-out consumes
    // one retry and the task still completes: Recovering, then Healthy.
    const sim::ConstantHarvester harvester(Watts(20e-3));
    sim::Device device = chargedDevice(&harvester);

    fault::FaultPlan plan;
    plan.brownouts = {{Seconds(5e-3)}};
    fault::FaultInjector injector(plan);
    device.setFaultHooks(&injector);

    sched::Supervisor supervisor;
    RuntimeOptions options;
    options.supervisor = &supervisor;
    const std::vector<AtomicTask> program = {
        {1, "radio", load::uniform(50.0_mA, 20.0_ms).renamed("radio")}};
    const ProgramResult result = runProgram(device, program, options);

    EXPECT_TRUE(result.finished);
    EXPECT_EQ(result.skipped_tasks, 0u);
    EXPECT_EQ(result.per_task[0].completions, 1u);
    EXPECT_GE(supervisor.stats().retries, 1u);
    EXPECT_EQ(supervisor.stats().sheds, 0u);
    EXPECT_EQ(supervisor.stateOf("radio"), sched::TaskHealth::Healthy);
}

TEST(IntermittentRuntime, SupervisedShedsHopelessTaskAndMovesOn)
{
    // The same 120 mA hog the non-termination check flags: with a
    // supervisor the runtime spends the retry budget, demotes the task,
    // and finishes the rest of the program instead of giving up.
    const sim::ConstantHarvester harvester(Watts(20e-3));
    sim::Device device = chargedDevice(&harvester);

    sched::Supervisor supervisor;
    RuntimeOptions options;
    options.supervisor = &supervisor;
    const std::vector<AtomicTask> program = {
        {1, "hog", load::uniform(120.0_mA, 200.0_ms).renamed("hog")},
        {2, "blip", load::uniform(5.0_mA, 10.0_ms).renamed("blip")}};
    const ProgramResult result = runProgram(device, program, options);

    EXPECT_TRUE(result.finished);
    EXPECT_FALSE(result.nonterminating);
    EXPECT_EQ(result.skipped_tasks, 1u);
    EXPECT_TRUE(result.per_task[0].skipped);
    EXPECT_EQ(result.per_task[0].completions, 0u);
    // Bounded retry: budget (3) + the demoting attempt.
    EXPECT_LE(result.per_task[0].failures,
              supervisor.options().retry_budget + 1);
    EXPECT_FALSE(result.per_task[1].skipped);
    EXPECT_EQ(result.per_task[1].completions, 1u);
    EXPECT_EQ(supervisor.stateOf("hog"), sched::TaskHealth::Demoted);
    EXPECT_GE(supervisor.stats().sheds, 1u);
}

TEST(IntermittentRuntime, SupervisedGatedSkipsUnreachableWait)
{
    // Zero harvest and a buffer below the gate: the wait is provably
    // unsatisfiable. Unsupervised runs end starved; a supervisor demotes
    // the task and lets the program finish with it skipped.
    core::Culpeo culpeo(core::modelFromConfig(sim::capybaraConfig()),
                        std::make_unique<core::UArchProfiler>());
    const auto radio = load::uniform(50.0_mA, 20.0_ms).renamed("radio");
    harness::profileTaskFrom(sim::capybaraConfig(), Volts(2.56), culpeo,
                             1, radio);

    sim::Device device(sim::capybaraConfig());
    device.setBufferVoltage(Volts(1.75));
    device.forceOutputEnabled(true);

    sched::Supervisor supervisor;
    RuntimeOptions options;
    options.policy = DispatchPolicy::VsafeGated;
    options.culpeo = &culpeo;
    options.supervisor = &supervisor;
    const ProgramResult result =
        runProgram(device, {{1, "radio", radio}}, options);

    EXPECT_TRUE(result.finished);
    EXPECT_FALSE(result.starved);
    EXPECT_EQ(result.skipped_tasks, 1u);
    EXPECT_TRUE(result.per_task[0].skipped);
    EXPECT_EQ(supervisor.stateOf("radio"), sched::TaskHealth::Demoted);
}

TEST(IntermittentRuntime, GatedWastesLessEnergyThanOpportunistic)
{
    // The paper's motivation: failed attempts cost energy. Compare the
    // total failed executions across a program of mixed tasks starting
    // from mid-charge.
    const sim::ConstantHarvester harvester(Watts(10e-3));

    core::Culpeo culpeo(core::modelFromConfig(sim::capybaraConfig()),
                        std::make_unique<core::UArchProfiler>());
    auto program = senseComputeSend();
    for (const auto &task : program) {
        harness::profileTaskFrom(sim::capybaraConfig(), Volts(2.56),
                                 culpeo, task.id, task.profile);
    }

    sim::Device opportunistic = chargedDevice(&harvester);
    opportunistic.setBufferVoltage(Volts(1.8));
    RuntimeOptions opp;
    const ProgramResult opp_result =
        runProgram(opportunistic, program, opp);

    sim::Device gated = chargedDevice(&harvester);
    gated.setBufferVoltage(Volts(1.8));
    RuntimeOptions gate;
    gate.policy = DispatchPolicy::VsafeGated;
    gate.culpeo = &culpeo;
    const ProgramResult gated_result = runProgram(gated, program, gate);

    EXPECT_TRUE(opp_result.finished);
    EXPECT_TRUE(gated_result.finished);
    EXPECT_LE(gated_result.totalFailures(), opp_result.totalFailures());
    EXPECT_EQ(gated_result.totalFailures(), 0u);
}

} // namespace
