/** @file Unit tests for harvest-adaptive re-profiling support. */

#include <gtest/gtest.h>

#include <memory>

#include "harness/profiling.hpp"
#include "load/library.hpp"
#include "sched/adaptive.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;
using sched::ChargeRateMonitor;

TEST(ChargeRateMonitor, TriggersWithoutBaseline)
{
    const ChargeRateMonitor monitor(0.25);
    EXPECT_TRUE(monitor.observe(Watts(1e-3)));
}

TEST(ChargeRateMonitor, SmallDriftDoesNotTrigger)
{
    ChargeRateMonitor monitor(0.25);
    monitor.baseline(Watts(2e-3));
    EXPECT_FALSE(monitor.observe(Watts(2.2e-3)));
    EXPECT_FALSE(monitor.observe(Watts(1.8e-3)));
}

TEST(ChargeRateMonitor, LargeDriftTriggersBothDirections)
{
    ChargeRateMonitor monitor(0.25);
    monitor.baseline(Watts(2e-3));
    EXPECT_TRUE(monitor.observe(Watts(2.6e-3)));
    EXPECT_TRUE(monitor.observe(Watts(1.4e-3)));
}

TEST(ChargeRateMonitor, RebaselineResets)
{
    ChargeRateMonitor monitor(0.25);
    monitor.baseline(Watts(2e-3));
    ASSERT_TRUE(monitor.observe(Watts(4e-3)));
    monitor.baseline(Watts(4e-3));
    EXPECT_FALSE(monitor.observe(Watts(4.2e-3)));
}

TEST(ChargeRateMonitor, ZeroBaselineEdge)
{
    ChargeRateMonitor monitor(0.25);
    monitor.baseline(Watts(0.0));
    EXPECT_FALSE(monitor.observe(Watts(0.0)));
    EXPECT_TRUE(monitor.observe(Watts(1e-3)));
}

TEST(ChargeRateMonitor, Validation)
{
    EXPECT_THROW(ChargeRateMonitor{0.0}, log::FatalError);
    ChargeRateMonitor monitor(0.25);
    EXPECT_THROW(monitor.baseline(Watts(-1.0)), log::FatalError);
}

TEST(AdaptiveReprofiling, HarvestLevelChangesProfiledVsafe)
{
    // Culpeo-R profiles the task *in deployment*, with the harvester
    // charging during execution: stronger harvest offsets part of the
    // discharge, lowering the observed energy cost. This is exactly why
    // Section V-B couples Culpeo-R with charge-rate re-profiling.
    const auto task = load::uniform(25.0_mA, 100.0_ms);
    auto vsafe_at = [&](double harvest_w) {
        const sim::ConstantHarvester harvester{Watts(harvest_w)};
        sim::Device device(sim::capybaraConfig());
        device.setHarvester(&harvester);
        device.setBufferVoltage(Volts(2.56));
        device.forceOutputEnabled(true);
        core::Culpeo culpeo(core::modelFromConfig(sim::capybaraConfig()),
                            std::make_unique<core::UArchProfiler>());
        harness::profileTask(device, culpeo, 1, task);
        return culpeo.getVsafe(1).value();
    };
    const double weak = vsafe_at(1e-3);
    const double strong = vsafe_at(20e-3);
    EXPECT_LT(strong, weak);

    // The monitor flags the change so the scheduler re-profiles.
    ChargeRateMonitor monitor(0.25);
    monitor.baseline(Watts(1e-3));
    EXPECT_TRUE(monitor.observe(Watts(20e-3)));
}

} // namespace
