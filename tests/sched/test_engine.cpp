/** @file Unit tests for the event-driven scheduler engine. */

#include <gtest/gtest.h>

#include "util/logging.hpp"

#include "apps/apps.hpp"
#include "load/library.hpp"
#include "sched/trial.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;
using sched::AggregateResult;
using sched::AppSpec;
using sched::TrialResult;

/** A trivial policy with fixed thresholds, for engine-only tests. */
class FixedPolicy : public sched::Policy
{
  public:
    Volts task_start{1.9};
    Volts chain_start{1.9};
    Volts background{2.3};

    const char *name() const override { return "fixed"; }
    void initialize(const AppSpec &) override {}
    sched::Admission admitTask(const sched::SchedTask &) const override
    {
        return {true, task_start};
    }
    sched::Admission admitChain(const sched::EventSpec &) const override
    {
        return {true, chain_start};
    }
    sched::Admission admitBackground(const AppSpec &) const override
    {
        return {true, background};
    }
};

AppSpec
simpleApp()
{
    AppSpec app;
    app.name = "simple";
    app.power = sim::capybaraConfig();
    app.harvest = 5.0_mW;

    sched::EventSpec ping;
    ping.name = "ping";
    ping.arrival = sched::Arrival::Periodic;
    ping.interval = 2.0_s;
    ping.deadline = 2.0_s;
    ping.chain = {{1, "blip", load::uniform(5.0_mA, 10.0_ms)}};
    app.events.push_back(ping);
    return app;
}

TEST(Engine, CapturesAllEasyEvents)
{
    const AppSpec app = simpleApp();
    FixedPolicy policy;
    const TrialResult result =
        TrialBuilder().app(app).policy(policy).duration(20.0_s).seed(1).run();
    const auto &stats = result.eventStats("ping");
    EXPECT_EQ(stats.arrived, 9u); // t = 2,4,...,18.
    EXPECT_EQ(stats.captured, stats.arrived);
    EXPECT_EQ(result.power_failures, 0u);
}

TEST(Engine, UnreachableChainStartLosesEverything)
{
    const AppSpec app = simpleApp();
    FixedPolicy policy;
    policy.chain_start = Volts(3.0); // Above Vhigh: never satisfiable.
    const TrialResult result =
        TrialBuilder().app(app).policy(policy).duration(10.0_s).seed(1).run();
    const auto &stats = result.eventStats("ping");
    EXPECT_GT(stats.arrived, 0u);
    EXPECT_EQ(stats.captured, 0u);
    EXPECT_EQ(stats.lost, stats.arrived);
}

TEST(Engine, UnsafeTaskStartCausesPowerFailures)
{
    AppSpec app = simpleApp();
    app.events[0].chain = {{1, "hog", load::uniform(50.0_mA, 100.0_ms)}};
    // Run the heavy task from barely above Voff: guaranteed brown-out.
    FixedPolicy policy;
    policy.task_start = Volts(1.7);
    policy.chain_start = Volts(1.7);
    // Drain the buffer toward the threshold with background work first.
    app.background = sched::SchedTask{2, "drain",
                                      load::uniform(10.0_mA, 50.0_ms)};
    app.background_period = 0.06_s;
    policy.background = Volts(1.71);
    const TrialResult result = TrialBuilder().app(app).policy(policy).duration(30.0_s).seed(1).run();
    EXPECT_GT(result.power_failures, 0u);
    EXPECT_GT(result.eventStats("ping").lost, 0u);
}

TEST(Engine, BackgroundRunsOnlyAboveThreshold)
{
    AppSpec app = simpleApp();
    app.background = sched::SchedTask{2, "bg",
                                      load::uniform(5.0_mA, 20.0_ms)};
    app.background_period = 0.1_s;

    FixedPolicy generous;
    generous.background = Volts(1.7);
    const TrialResult with_bg =
        TrialBuilder().app(app).policy(generous).duration(10.0_s).seed(1).run();
    EXPECT_GT(with_bg.background_runs, 0u);

    FixedPolicy stingy;
    stingy.background = Volts(3.0); // Above Vhigh: never runs.
    const TrialResult without_bg =
        TrialBuilder().app(app).policy(stingy).duration(10.0_s).seed(1).run();
    EXPECT_EQ(without_bg.background_runs, 0u);
}

TEST(Engine, PoissonArrivalsVaryBySeed)
{
    AppSpec app = simpleApp();
    app.events[0].arrival = sched::Arrival::Poisson;
    app.events[0].interval = 1.0_s;
    FixedPolicy policy;
    const TrialResult a = TrialBuilder().app(app).policy(policy).duration(30.0_s).seed(1).run();
    const TrialResult b = TrialBuilder().app(app).policy(policy).duration(30.0_s).seed(2).run();
    // Different seeds, (almost surely) different arrival counts.
    EXPECT_NE(a.eventStats("ping").arrived, b.eventStats("ping").arrived);
}

TEST(Engine, SameSeedIsDeterministic)
{
    AppSpec app = simpleApp();
    app.events[0].arrival = sched::Arrival::Poisson;
    FixedPolicy policy;
    const TrialResult a = TrialBuilder().app(app).policy(policy).duration(30.0_s).seed(5).run();
    const TrialResult b = TrialBuilder().app(app).policy(policy).duration(30.0_s).seed(5).run();
    EXPECT_EQ(a.eventStats("ping").arrived, b.eventStats("ping").arrived);
    EXPECT_EQ(a.eventStats("ping").captured,
              b.eventStats("ping").captured);
}

TEST(Engine, AggregateAveragesTrials)
{
    const AppSpec app = simpleApp();
    FixedPolicy policy;
    const AggregateResult agg =
        TrialBuilder().app(app).policy(policy).duration(10.0_s).trials(3).runAll();
    EXPECT_EQ(agg.event_names.size(), 1u);
    EXPECT_NEAR(agg.rateOf("ping"), 1.0, 1e-12);
}

TEST(Engine, OverallCaptureRateWeighsAllEvents)
{
    TrialResult result;
    result.per_event.push_back({"a", 10, 5, 5});
    result.per_event.push_back({"b", 10, 10, 0});
    EXPECT_NEAR(result.overallCaptureRate(), 0.75, 1e-12);
}

// Regression: an event type with no arrivals used to report a perfect
// captureRate() of 1.0, inflating aggregates in short trials. Empty
// types must read as 0 and be excluded from overall rates.
TEST(Engine, EmptyEventTypeDoesNotInflateCaptureRate)
{
    sched::EventTypeStats empty;
    empty.name = "never";
    EXPECT_TRUE(empty.empty());
    EXPECT_DOUBLE_EQ(empty.captureRate(), 0.0);

    // A second event type whose interval exceeds the trial duration
    // never fires; the aggregate must reflect only the live type.
    AppSpec app = simpleApp();
    sched::EventSpec rare;
    rare.name = "rare";
    rare.arrival = sched::Arrival::Periodic;
    rare.interval = 1000.0_s; // Far beyond the 10 s trial.
    rare.deadline = 2.0_s;
    rare.chain = {{9, "noop", load::uniform(5.0_mA, 10.0_ms)}};
    app.events.push_back(rare);

    FixedPolicy policy;
    const AggregateResult agg = TrialBuilder()
                                    .app(app)
                                    .policy(policy)
                                    .duration(10.0_s)
                                    .trials(2)
                                    .runAll();
    EXPECT_EQ(agg.arrivals[1], 0u);
    EXPECT_DOUBLE_EQ(agg.rateOf("rare"), 0.0);
    // "ping" captures everything, so excluding the empty "rare" type
    // keeps the overall rate at 1.0 (it used to be diluted or padded).
    EXPECT_NEAR(agg.overallCaptureRate(), 1.0, 1e-12);

    sched::TrialResult all_empty;
    all_empty.per_event.push_back({"quiet", 0, 0, 0});
    EXPECT_DOUBLE_EQ(all_empty.overallCaptureRate(), 0.0);
}

TEST(Engine, UnknownEventNameIsFatal)
{
    TrialResult result;
    EXPECT_THROW(result.eventStats("nope"), culpeo::log::FatalError);
    AggregateResult agg;
    EXPECT_THROW(agg.rateOf("nope"), culpeo::log::FatalError);
}

} // namespace
