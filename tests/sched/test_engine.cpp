/** @file Unit tests for the event-driven scheduler engine. */

#include <gtest/gtest.h>

#include "util/logging.hpp"

#include "apps/apps.hpp"
#include "load/library.hpp"
#include "sched/engine.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;
using sched::AggregateResult;
using sched::AppSpec;
using sched::TrialResult;

/** A trivial policy with fixed thresholds, for engine-only tests. */
class FixedPolicy : public sched::Policy
{
  public:
    Volts task_start{1.9};
    Volts chain_start{1.9};
    Volts background{2.3};

    const char *name() const override { return "fixed"; }
    void initialize(const AppSpec &) override {}
    Volts taskStart(const sched::SchedTask &) const override
    {
        return task_start;
    }
    Volts chainStart(const sched::EventSpec &) const override
    {
        return chain_start;
    }
    Volts backgroundThreshold(const AppSpec &) const override
    {
        return background;
    }
};

AppSpec
simpleApp()
{
    AppSpec app;
    app.name = "simple";
    app.power = sim::capybaraConfig();
    app.harvest = 5.0_mW;

    sched::EventSpec ping;
    ping.name = "ping";
    ping.arrival = sched::Arrival::Periodic;
    ping.interval = 2.0_s;
    ping.deadline = 2.0_s;
    ping.chain = {{1, "blip", load::uniform(5.0_mA, 10.0_ms)}};
    app.events.push_back(ping);
    return app;
}

TEST(Engine, CapturesAllEasyEvents)
{
    FixedPolicy policy;
    const TrialResult result =
        sched::runTrial(simpleApp(), policy, 20.0_s, 1);
    const auto &stats = result.eventStats("ping");
    EXPECT_EQ(stats.arrived, 9u); // t = 2,4,...,18.
    EXPECT_EQ(stats.captured, stats.arrived);
    EXPECT_EQ(result.power_failures, 0u);
}

TEST(Engine, UnreachableChainStartLosesEverything)
{
    FixedPolicy policy;
    policy.chain_start = Volts(3.0); // Above Vhigh: never satisfiable.
    const TrialResult result =
        sched::runTrial(simpleApp(), policy, 10.0_s, 1);
    const auto &stats = result.eventStats("ping");
    EXPECT_GT(stats.arrived, 0u);
    EXPECT_EQ(stats.captured, 0u);
    EXPECT_EQ(stats.lost, stats.arrived);
}

TEST(Engine, UnsafeTaskStartCausesPowerFailures)
{
    AppSpec app = simpleApp();
    app.events[0].chain = {{1, "hog", load::uniform(50.0_mA, 100.0_ms)}};
    // Run the heavy task from barely above Voff: guaranteed brown-out.
    FixedPolicy policy;
    policy.task_start = Volts(1.7);
    policy.chain_start = Volts(1.7);
    // Drain the buffer toward the threshold with background work first.
    app.background = sched::SchedTask{2, "drain",
                                      load::uniform(10.0_mA, 50.0_ms)};
    app.background_period = 0.06_s;
    policy.background = Volts(1.71);
    const TrialResult result = sched::runTrial(app, policy, 30.0_s, 1);
    EXPECT_GT(result.power_failures, 0u);
    EXPECT_GT(result.eventStats("ping").lost, 0u);
}

TEST(Engine, BackgroundRunsOnlyAboveThreshold)
{
    AppSpec app = simpleApp();
    app.background = sched::SchedTask{2, "bg",
                                      load::uniform(5.0_mA, 20.0_ms)};
    app.background_period = 0.1_s;

    FixedPolicy generous;
    generous.background = Volts(1.7);
    const TrialResult with_bg =
        sched::runTrial(app, generous, 10.0_s, 1);
    EXPECT_GT(with_bg.background_runs, 0u);

    FixedPolicy stingy;
    stingy.background = Volts(3.0); // Above Vhigh: never runs.
    const TrialResult without_bg =
        sched::runTrial(app, stingy, 10.0_s, 1);
    EXPECT_EQ(without_bg.background_runs, 0u);
}

TEST(Engine, PoissonArrivalsVaryBySeed)
{
    AppSpec app = simpleApp();
    app.events[0].arrival = sched::Arrival::Poisson;
    app.events[0].interval = 1.0_s;
    FixedPolicy policy;
    const TrialResult a = sched::runTrial(app, policy, 30.0_s, 1);
    const TrialResult b = sched::runTrial(app, policy, 30.0_s, 2);
    // Different seeds, (almost surely) different arrival counts.
    EXPECT_NE(a.eventStats("ping").arrived, b.eventStats("ping").arrived);
}

TEST(Engine, SameSeedIsDeterministic)
{
    AppSpec app = simpleApp();
    app.events[0].arrival = sched::Arrival::Poisson;
    FixedPolicy policy;
    const TrialResult a = sched::runTrial(app, policy, 30.0_s, 5);
    const TrialResult b = sched::runTrial(app, policy, 30.0_s, 5);
    EXPECT_EQ(a.eventStats("ping").arrived, b.eventStats("ping").arrived);
    EXPECT_EQ(a.eventStats("ping").captured,
              b.eventStats("ping").captured);
}

TEST(Engine, AggregateAveragesTrials)
{
    FixedPolicy policy;
    const AggregateResult agg =
        sched::runTrials(simpleApp(), policy, 10.0_s, 3);
    EXPECT_EQ(agg.event_names.size(), 1u);
    EXPECT_NEAR(agg.rateOf("ping"), 1.0, 1e-12);
}

TEST(Engine, OverallCaptureRateWeighsAllEvents)
{
    TrialResult result;
    result.per_event.push_back({"a", 10, 5, 5});
    result.per_event.push_back({"b", 10, 10, 0});
    EXPECT_NEAR(result.overallCaptureRate(), 0.75, 1e-12);
}

TEST(Engine, UnknownEventNameIsFatal)
{
    TrialResult result;
    EXPECT_THROW(result.eventStats("nope"), culpeo::log::FatalError);
    AggregateResult agg;
    EXPECT_THROW(agg.rateOf("nope"), culpeo::log::FatalError);
}

} // namespace
