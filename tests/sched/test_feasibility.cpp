/** @file Unit tests for the analytic feasibility tests (Theorem 1). */

#include <gtest/gtest.h>

#include "sched/feasibility.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using sched::FeasibilityInput;
using sched::FeasibilityVerdict;
using sched::PeriodicTaskSpec;
using sched::catnapFeasibility;
using sched::theorem1Feasibility;

/** The Figure 5 scenario: sense every 3 ticks, radio every 6.5 ticks. */
FeasibilityInput
figure5()
{
    FeasibilityInput input;
    PeriodicTaskSpec sense;
    sense.name = "sense";
    sense.period = Seconds(3.0);
    sense.duration = Seconds(0.05);
    sense.v_energy = Volts(0.10);
    sense.vdelta = Volts(0.03);

    PeriodicTaskSpec radio;
    radio.name = "radio";
    radio.period = Seconds(6.5);
    radio.duration = Seconds(0.02);
    radio.v_energy = Volts(0.05);
    radio.vdelta = Volts(0.45); // The high-current ESR drop.

    input.tasks = {sense, radio};
    // Weak harvesting: the buffer declines across the schedule, as in
    // the figure's discharge segments.
    input.charge_volts_per_sec = 0.005;
    return input;
}

TEST(Feasibility, CatnapAcceptsFigure5Schedule)
{
    const FeasibilityVerdict verdict = catnapFeasibility(figure5());
    EXPECT_TRUE(verdict.feasible);
}

TEST(Feasibility, Theorem1RejectsFigure5Schedule)
{
    const FeasibilityVerdict verdict = theorem1Feasibility(figure5());
    EXPECT_FALSE(verdict.feasible);
    EXPECT_EQ(verdict.limiting_task, "radio");
    EXPECT_LT(verdict.worst_margin.value(), 0.0);
}

TEST(Feasibility, Theorem1AcceptsWithFasterCharging)
{
    FeasibilityInput input = figure5();
    // With a high enough recharge slope the buffer recovers to the
    // radio's Vsafe between dispatches.
    input.charge_volts_per_sec = 0.2;
    EXPECT_TRUE(theorem1Feasibility(input).feasible);
}

TEST(Feasibility, Theorem1AcceptsZeroDropTaskSets)
{
    FeasibilityInput input = figure5();
    for (auto &task : input.tasks)
        task.vdelta = Volts(0.0);
    // With no ESR drops both tests must agree.
    EXPECT_EQ(theorem1Feasibility(input).feasible,
              catnapFeasibility(input).feasible);
}

TEST(Feasibility, Theorem1NeverMoreOptimisticThanCatnap)
{
    // Property: Theorem 1's requirement dominates CatNap's, so its
    // worst margin can never exceed CatNap's.
    for (double delta : {0.0, 0.1, 0.3, 0.5}) {
        FeasibilityInput input = figure5();
        input.tasks[1].vdelta = Volts(delta);
        const auto catnap = catnapFeasibility(input);
        const auto theorem = theorem1Feasibility(input);
        EXPECT_LE(theorem.worst_margin.value(),
                  catnap.worst_margin.value() + 1e-12);
        if (!catnap.feasible) {
            EXPECT_FALSE(theorem.feasible);
        }
    }
}

TEST(Feasibility, EnergyOverloadRejectedByBoth)
{
    FeasibilityInput input = figure5();
    // A task consuming more per period than charging restores.
    input.tasks[0].v_energy = Volts(0.5);
    input.charge_volts_per_sec = 0.01;
    EXPECT_FALSE(catnapFeasibility(input).feasible);
    EXPECT_FALSE(theorem1Feasibility(input).feasible);
}

TEST(Feasibility, ViolationTimeIsWithinHorizon)
{
    const FeasibilityVerdict verdict = theorem1Feasibility(figure5());
    ASSERT_FALSE(verdict.feasible);
    EXPECT_GT(verdict.violation_time.value(), 0.0);
    EXPECT_LE(verdict.violation_time.value(), 4.0 * 6.5);
}

TEST(Feasibility, HorizonOverrideRespected)
{
    FeasibilityInput input = figure5();
    input.horizon = Seconds(5.0); // Before the first radio release.
    const FeasibilityVerdict verdict = theorem1Feasibility(input);
    EXPECT_TRUE(verdict.feasible);
}

TEST(Feasibility, Validation)
{
    FeasibilityInput empty;
    EXPECT_THROW(catnapFeasibility(empty), log::FatalError);
    FeasibilityInput bad = figure5();
    bad.charge_volts_per_sec = -1.0;
    EXPECT_THROW(theorem1Feasibility(bad), log::FatalError);
}

} // namespace
