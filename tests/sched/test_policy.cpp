/** @file Unit tests for the CatNap and Culpeo scheduling policies. */

#include <gtest/gtest.h>

#include "util/logging.hpp"

#include "apps/apps.hpp"
#include "sched/trial.hpp"
#include "sched/policy.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using sched::CatnapPolicy;
using sched::CulpeoPolicy;

class PolicyTest : public ::testing::Test
{
  protected:
    static sched::AppSpec app_;
    static CatnapPolicy catnap_;
    static CulpeoPolicy culpeo_;
    static bool initialized_;

    static void
    SetUpTestSuite()
    {
        if (!initialized_) {
            app_ = apps::responsiveReporting();
            catnap_.initialize(app_);
            culpeo_.initialize(app_);
            initialized_ = true;
        }
    }
};

sched::AppSpec PolicyTest::app_;
CatnapPolicy PolicyTest::catnap_;
CulpeoPolicy PolicyTest::culpeo_;
bool PolicyTest::initialized_ = false;

TEST_F(PolicyTest, CatnapCostsArePositive)
{
    for (const auto &task : app_.events[0].chain)
        EXPECT_GT(catnap_.costOf(task.id).value(), 0.0);
}

TEST_F(PolicyTest, CatnapChainSumsTaskCosts)
{
    const auto &event = app_.events[0];
    double sum = app_.power.monitor.voff.value();
    for (const auto &task : event.chain)
        sum += catnap_.costOf(task.id).value();
    EXPECT_NEAR(catnap_.chainStart(event).value(),
                std::min(sum, app_.power.monitor.vhigh.value()), 1e-9);
}

TEST_F(PolicyTest, CulpeoTaskStartAboveVoff)
{
    for (const auto &task : app_.events[0].chain) {
        const double v = culpeo_.taskStart(task).value();
        EXPECT_GT(v, app_.power.monitor.voff.value());
        EXPECT_LE(v, app_.power.monitor.vhigh.value());
    }
}

TEST_F(PolicyTest, CulpeoDemandsMoreThanCatnapForBurstyTasks)
{
    // The IMU task front-loads a 20 mA burst whose drop rebounds behind
    // the compute tail; CatNap's end measurement misses it.
    const auto &imu = app_.events[0].chain[0];
    EXPECT_GT(culpeo_.taskStart(imu).value(),
              catnap_.taskStart(imu).value() + 0.03);
}

TEST_F(PolicyTest, CulpeoChainAtLeastMaxTask)
{
    const auto &event = app_.events[0];
    double max_task = 0.0;
    for (const auto &task : event.chain)
        max_task = std::max(max_task, culpeo_.taskStart(task).value());
    EXPECT_GE(culpeo_.chainStart(event).value(), max_task - 1e-9);
}

TEST_F(PolicyTest, BackgroundThresholdReservesForChain)
{
    // Both policies hold background work above their own chain start.
    EXPECT_GE(catnap_.backgroundThreshold(app_).value(),
              catnap_.chainStart(app_.events[0]).value());
    EXPECT_GE(culpeo_.backgroundThreshold(app_).value(),
              culpeo_.chainStart(app_.events[0]).value());
}

TEST_F(PolicyTest, CulpeoBackgroundThresholdHigherThanCatnap)
{
    // The Section VII-C mechanism: CatNap lets background work discharge
    // the buffer further than is actually safe.
    EXPECT_GT(culpeo_.backgroundThreshold(app_).value(),
              catnap_.backgroundThreshold(app_).value());
}

TEST_F(PolicyTest, PolicyNames)
{
    EXPECT_STREQ(catnap_.name(), "catnap");
    EXPECT_STREQ(culpeo_.name(), "culpeo");
    EXPECT_STREQ(CulpeoPolicy(true).name(), "culpeo-uarch");
}

TEST(CulpeoPolicyStandalone, UninitializedAccessIsFatal)
{
    CulpeoPolicy policy;
    EXPECT_THROW(policy.culpeo(), culpeo::log::FatalError);
}

TEST(CulpeoPolicyStandalone, NegativeMarginIsFatal)
{
    EXPECT_THROW(CulpeoPolicy(false, Volts(-0.01)),
                 culpeo::log::FatalError);
}

TEST(CulpeoPolicyStandalone, DispatchMarginShiftsThresholds)
{
    const sched::AppSpec app = apps::periodicSensing();
    CulpeoPolicy tight(false, Volts(0.0));
    CulpeoPolicy padded(false, Volts(0.04));
    tight.initialize(app);
    padded.initialize(app);
    const double delta = padded.chainStart(app.events[0]).value() -
                         tight.chainStart(app.events[0]).value();
    // Identical profiling (deterministic), so the gap is the margin --
    // unless clamped at Vhigh.
    if (padded.chainStart(app.events[0]).value() < 2.56 - 1e-9) {
        EXPECT_NEAR(delta, 0.04, 1e-6);
    }
    EXPECT_GE(padded.backgroundThreshold(app).value(),
              tight.backgroundThreshold(app).value());
}

TEST(CulpeoPolicyStandalone, UArchVariantProducesSaneThresholds)
{
    const sched::AppSpec app = apps::periodicSensing();
    CulpeoPolicy policy(true);
    policy.initialize(app);
    const double chain = policy.chainStart(app.events[0]).value();
    EXPECT_GT(chain, app.power.monitor.voff.value());
    EXPECT_LE(chain, app.power.monitor.vhigh.value());
    // And it schedules successfully end-to-end.
    const sched::TrialResult result =
        TrialBuilder()
            .app(app)
            .policy(policy)
            .duration(units::Seconds(30.0))
            .seed(3)
            .run();
    EXPECT_EQ(result.power_failures, 0u);
    EXPECT_GT(result.eventStats("imu").captureRate(), 0.9);
}

} // namespace
