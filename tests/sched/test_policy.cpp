/** @file Unit tests for the CatNap and Culpeo scheduling policies. */

#include <gtest/gtest.h>

#include <algorithm>

#include "util/logging.hpp"

#include "apps/apps.hpp"
#include "sched/trial.hpp"
#include "sched/policy.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using sched::CatnapPolicy;
using sched::CulpeoPolicy;

class PolicyTest : public ::testing::Test
{
  protected:
    static sched::AppSpec app_;
    static CatnapPolicy catnap_;
    static CulpeoPolicy culpeo_;
    static bool initialized_;

    static void
    SetUpTestSuite()
    {
        if (!initialized_) {
            app_ = apps::responsiveReporting();
            catnap_.initialize(app_);
            culpeo_.initialize(app_);
            initialized_ = true;
        }
    }
};

sched::AppSpec PolicyTest::app_;
CatnapPolicy PolicyTest::catnap_;
CulpeoPolicy PolicyTest::culpeo_;
bool PolicyTest::initialized_ = false;

TEST_F(PolicyTest, CatnapCostsArePositive)
{
    const sched::PolicyDescription desc = catnap_.describe();
    for (const auto &task : app_.events[0].chain)
        EXPECT_GT(desc.costOf(task.id).cost.value(), 0.0);
}

TEST_F(PolicyTest, CatnapChainSumsTaskCosts)
{
    const auto &event = app_.events[0];
    const sched::PolicyDescription desc = catnap_.describe();
    double sum = app_.power.monitor.voff.value();
    for (const auto &task : event.chain)
        sum += desc.costOf(task.id).cost.value();
    EXPECT_NEAR(catnap_.admitChain(event).need.value(),
                std::min(sum, app_.power.monitor.vhigh.value()), 1e-9);
}

TEST_F(PolicyTest, CulpeoTaskStartAboveVoff)
{
    for (const auto &task : app_.events[0].chain) {
        const double v = culpeo_.admitTask(task).need.value();
        EXPECT_GT(v, app_.power.monitor.voff.value());
        EXPECT_LE(v, app_.power.monitor.vhigh.value());
    }
}

TEST_F(PolicyTest, CulpeoDemandsMoreThanCatnapForBurstyTasks)
{
    // The IMU task front-loads a 20 mA burst whose drop rebounds behind
    // the compute tail; CatNap's end measurement misses it.
    const auto &imu = app_.events[0].chain[0];
    EXPECT_GT(culpeo_.admitTask(imu).need.value(),
              catnap_.admitTask(imu).need.value() + 0.03);
}

TEST_F(PolicyTest, CulpeoChainAtLeastMaxTask)
{
    const auto &event = app_.events[0];
    double max_task = 0.0;
    for (const auto &task : event.chain)
        max_task =
            std::max(max_task, culpeo_.admitTask(task).need.value());
    EXPECT_GE(culpeo_.admitChain(event).need.value(), max_task - 1e-9);
}

TEST_F(PolicyTest, BackgroundThresholdReservesForChain)
{
    // Both policies hold background work above their own chain start.
    EXPECT_GE(catnap_.admitBackground(app_).need.value(),
              catnap_.admitChain(app_.events[0]).need.value());
    EXPECT_GE(culpeo_.admitBackground(app_).need.value(),
              culpeo_.admitChain(app_.events[0]).need.value());
}

TEST_F(PolicyTest, CulpeoBackgroundThresholdHigherThanCatnap)
{
    // The Section VII-C mechanism: CatNap lets background work discharge
    // the buffer further than is actually safe.
    EXPECT_GT(culpeo_.admitBackground(app_).need.value(),
              catnap_.admitBackground(app_).need.value());
}

TEST_F(PolicyTest, BuiltInAdmissionsAreUnconditional)
{
    // The fixed-threshold policies always admit, never touch the
    // buffer, and are stationary — the batch lanes rely on all three.
    for (const sched::Policy *policy :
         {static_cast<const sched::Policy *>(&catnap_),
          static_cast<const sched::Policy *>(&culpeo_)}) {
        const sched::Admission chain =
            policy->admitChain(app_.events[0]);
        const sched::Admission task =
            policy->admitTask(app_.events[0].chain[0]);
        const sched::Admission background =
            policy->admitBackground(app_);
        for (const sched::Admission &a : {chain, task, background}) {
            EXPECT_TRUE(a.admit);
            EXPECT_EQ(a.buffer, nullptr);
        }
        EXPECT_TRUE(policy->stationary());
    }
}

TEST_F(PolicyTest, DescribeReportsThresholdsConsistently)
{
    // describe() is the generic introspection surface: threshold must
    // equal the admission requirement, and cost = threshold - Voff.
    for (const sched::Policy *policy :
         {static_cast<const sched::Policy *>(&catnap_),
          static_cast<const sched::Policy *>(&culpeo_)}) {
        const sched::PolicyDescription desc = policy->describe();
        EXPECT_EQ(desc.policy, policy->name());
        for (const auto &task : app_.events[0].chain) {
            ASSERT_TRUE(desc.has(task.id));
            const sched::TaskCost &entry = desc.costOf(task.id);
            EXPECT_EQ(entry.task, task.name);
            EXPECT_NEAR(entry.threshold.value(),
                        policy->admitTask(task).need.value(), 1e-12);
            EXPECT_NEAR(entry.cost.value(),
                        entry.threshold.value() -
                            app_.power.monitor.voff.value(),
                        1e-12);
        }
        EXPECT_FALSE(desc.has(9999));
    }
}

TEST_F(PolicyTest, PolicyNames)
{
    EXPECT_STREQ(catnap_.name(), "catnap");
    EXPECT_STREQ(culpeo_.name(), "culpeo");
    EXPECT_STREQ(CulpeoPolicy(true).name(), "culpeo-uarch");
}

TEST(CulpeoPolicyStandalone, UninitializedAccessIsFatal)
{
    CulpeoPolicy policy;
    EXPECT_THROW(policy.culpeo(), culpeo::log::FatalError);
}

TEST(CulpeoPolicyStandalone, NegativeMarginIsFatal)
{
    EXPECT_THROW(CulpeoPolicy(false, Volts(-0.01)),
                 culpeo::log::FatalError);
}

TEST(CulpeoPolicyStandalone, DispatchMarginShiftsThresholds)
{
    const sched::AppSpec app = apps::periodicSensing();
    CulpeoPolicy tight(false, Volts(0.0));
    CulpeoPolicy padded(false, Volts(0.04));
    tight.initialize(app);
    padded.initialize(app);
    const double delta = padded.admitChain(app.events[0]).need.value() -
                         tight.admitChain(app.events[0]).need.value();
    // Identical profiling (deterministic), so the gap is the margin --
    // unless clamped at Vhigh.
    if (padded.admitChain(app.events[0]).need.value() < 2.56 - 1e-9) {
        EXPECT_NEAR(delta, 0.04, 1e-6);
    }
    EXPECT_GE(padded.admitBackground(app).need.value(),
              tight.admitBackground(app).need.value());
}

TEST(CulpeoPolicyStandalone, UArchVariantProducesSaneThresholds)
{
    const sched::AppSpec app = apps::periodicSensing();
    CulpeoPolicy policy(true);
    policy.initialize(app);
    const double chain = policy.admitChain(app.events[0]).need.value();
    EXPECT_GT(chain, app.power.monitor.voff.value());
    EXPECT_LE(chain, app.power.monitor.vhigh.value());
    // And it schedules successfully end-to-end.
    const sched::TrialResult result =
        TrialBuilder()
            .app(app)
            .policy(policy)
            .duration(units::Seconds(30.0))
            .seed(3)
            .run();
    EXPECT_EQ(result.power_failures, 0u);
    EXPECT_GT(result.eventStats("imu").captureRate(), 0.9);
}

// --- Policy registry ----------------------------------------------------

TEST(PolicyRegistry, BuiltInsAreRegistered)
{
    for (const char *name :
         {"catnap", "culpeo", "culpeo-uarch", "eab", "adaptive"})
        EXPECT_TRUE(sched::policyRegistered(name)) << name;
    EXPECT_FALSE(sched::policyRegistered("no-such-policy"));

    const std::vector<std::string> names = sched::registeredPolicies();
    for (const char *name :
         {"catnap", "culpeo", "culpeo-uarch", "eab", "adaptive"})
        EXPECT_NE(std::find(names.begin(), names.end(), name),
                  names.end())
            << name;
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(PolicyRegistry, MakePolicyRoundTrips)
{
    for (const char *name : {"catnap", "culpeo", "culpeo-uarch"}) {
        auto policy = sched::makePolicy(name);
        ASSERT_NE(policy, nullptr);
        EXPECT_STREQ(policy->name(), name);
        EXPECT_TRUE(policy->stationary());
    }
    // The adaptive policies come back non-stationary.
    EXPECT_FALSE(sched::makePolicy("eab")->stationary());
    EXPECT_FALSE(sched::makePolicy("adaptive")->stationary());
}

TEST(PolicyRegistry, UnknownNameIsFatal)
{
    EXPECT_THROW(sched::makePolicy("no-such-policy"),
                 culpeo::log::FatalError);
}

TEST(PolicyRegistry, DuplicateRegistrationIsFatal)
{
    sched::registerPolicy("test-duplicate-probe", [] {
        return std::unique_ptr<sched::Policy>(new CatnapPolicy());
    });
    EXPECT_THROW(sched::registerPolicy(
                     "test-duplicate-probe",
                     [] {
                         return std::unique_ptr<sched::Policy>(
                             new CatnapPolicy());
                     }),
                 culpeo::log::FatalError);
}

TEST(PolicyRegistry, TrialBuilderSelectsByName)
{
    const sched::AppSpec app = apps::periodicSensing();
    const sched::TrialResult by_name = TrialBuilder()
                                           .app(app)
                                           .policy("culpeo")
                                           .duration(Seconds(30.0))
                                           .seed(3)
                                           .run();
    CulpeoPolicy culpeo;
    culpeo.initialize(app);
    const sched::TrialResult by_instance = TrialBuilder()
                                               .app(app)
                                               .policy(culpeo)
                                               .duration(Seconds(30.0))
                                               .seed(3)
                                               .run();
    EXPECT_EQ(by_name.eventStats("imu").captured,
              by_instance.eventStats("imu").captured);
    EXPECT_EQ(by_name.power_failures, by_instance.power_failures);
    EXPECT_EQ(by_name.tasks_completed, by_instance.tasks_completed);
}

} // namespace
