/**
 * @file
 * Unit tests for the online-adapting policies: energy-adaptive bank
 * resizing under rising/falling harvest (EnergyAdaptiveBufferPolicy)
 * and profile-free cost estimation converging onto the profiled
 * thresholds (AdaptiveWorkloadPolicy).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/logging.hpp"

#include "apps/apps.hpp"
#include "sched/policy_adaptive.hpp"
#include "sched/trial.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using sched::AdaptiveWorkloadPolicy;
using sched::Admission;
using sched::EnergyAdaptiveBufferPolicy;
using sched::TaskOutcome;

/** A completed-dispatch outcome at @p harvest for @p task. */
TaskOutcome
completedAt(const sched::SchedTask &task, Watts harvest,
            Volts started_at = Volts(2.5), Volts vmin = Volts(2.2))
{
    TaskOutcome outcome;
    outcome.task = &task;
    outcome.completed = true;
    outcome.started_at = started_at;
    outcome.vmin = vmin;
    outcome.vend = vmin;
    outcome.voff = Volts(1.6);
    outcome.harvest = harvest;
    return outcome;
}

// --- EnergyAdaptiveBufferPolicy -----------------------------------------

class EabTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        app_ = apps::periodicSensing();
        policy_.initialize(app_);
    }

    /** Feed @p n completed outcomes at @p harvest. */
    void
    observeHarvest(Watts harvest, int n)
    {
        for (int i = 0; i < n; ++i)
            policy_.observe(completedAt(app_.events[0].chain[0], harvest));
    }

    sched::AppSpec app_;
    EnergyAdaptiveBufferPolicy policy_;
};

TEST_F(EabTest, StartsOnFullArrayAndReproducesAppBuffer)
{
    const unsigned n = policy_.options().total_banks;
    EXPECT_EQ(policy_.activeBanks(), n);
    EXPECT_EQ(policy_.targetBanks(), n);
    EXPECT_GE(policy_.feasibilityFloor(), 1u);
    EXPECT_LE(policy_.feasibilityFloor(), n);

    // The all-banks aggregate matches the app's deployed capacitor.
    const sim::CapacitorConfig &full = policy_.bankConfig(n);
    EXPECT_NEAR(full.capacitance.value(),
                app_.power.capacitor.capacitance.value(),
                1e-9);
    // Fewer banks: proportionally less capacitance, more resistance.
    if (n >= 2) {
        const sim::CapacitorConfig &one = policy_.bankConfig(1);
        EXPECT_NEAR(one.capacitance.value() * n,
                    full.capacitance.value(), 1e-9);
        EXPECT_GT(one.series_esr.value(), full.series_esr.value());
    }
}

TEST_F(EabTest, ScarceHarvestShrinksTowardFeasibilityFloor)
{
    const unsigned n = policy_.options().total_banks;
    ASSERT_GT(policy_.feasibilityFloor(), 0u);
    // Well below shrink_ratio x profiled harvest.
    const Watts scarce(app_.harvest.value() * 0.3);
    observeHarvest(scarce, 20);
    EXPECT_LT(policy_.targetBanks(), n);
    EXPECT_GE(policy_.targetBanks(), policy_.feasibilityFloor());
    // Saturates at the floor, never below.
    observeHarvest(scarce, 50);
    EXPECT_EQ(policy_.targetBanks(), policy_.feasibilityFloor());
}

TEST_F(EabTest, RichHarvestGrowsBackToFullArray)
{
    const unsigned n = policy_.options().total_banks;
    observeHarvest(Watts(app_.harvest.value() * 0.3), 50);
    ASSERT_EQ(policy_.targetBanks(), policy_.feasibilityFloor());
    // Well above grow_ratio x profiled harvest.
    observeHarvest(Watts(app_.harvest.value() * 2.0), 50);
    EXPECT_EQ(policy_.targetBanks(), n);
}

TEST_F(EabTest, BrownoutGrowsRegardlessOfHarvestTrend)
{
    observeHarvest(Watts(app_.harvest.value() * 0.3), 50);
    const unsigned shrunk = policy_.targetBanks();
    ASSERT_LT(shrunk, policy_.options().total_banks);

    TaskOutcome failure =
        completedAt(app_.events[0].chain[0],
                    Watts(app_.harvest.value() * 0.3));
    failure.completed = false;
    policy_.observe(failure);
    EXPECT_EQ(policy_.targetBanks(), shrunk + 1);
}

TEST_F(EabTest, ChainAdmissionCarriesBufferRequestOnce)
{
    observeHarvest(Watts(app_.harvest.value() * 0.3), 50);
    const unsigned target = policy_.targetBanks();
    ASSERT_NE(target, policy_.activeBanks());

    // Mid-chain task admissions never switch banks.
    const Admission task = policy_.admitTask(app_.events[0].chain[0]);
    EXPECT_TRUE(task.admit);
    EXPECT_EQ(task.buffer, nullptr);

    // The chain admission requests the pending reconfiguration...
    const Admission chain = policy_.admitChain(app_.events[0]);
    EXPECT_TRUE(chain.admit);
    ASSERT_NE(chain.buffer, nullptr);
    EXPECT_EQ(chain.banks, target);
    EXPECT_STREQ(chain.rationale, "eab:shrink(harvest)");
    EXPECT_DOUBLE_EQ(chain.buffer->capacitance.value(),
                     policy_.bankConfig(target).capacitance.value());
    // ...and under the Admission::buffer contract it is now applied.
    EXPECT_EQ(policy_.activeBanks(), target);
    const Admission again = policy_.admitChain(app_.events[0]);
    EXPECT_EQ(again.buffer, nullptr);
}

TEST_F(EabTest, ThresholdsComeFromPerConfigurationCulpeo)
{
    // Fewer banks => higher ESR => the ESR-aware chain threshold on one
    // bank is at least the full-array one.
    const unsigned n = policy_.options().total_banks;
    if (n < 2)
        GTEST_SKIP() << "needs a multi-bank split";
    observeHarvest(Watts(app_.harvest.value() * 0.3), 50);
    const Volts shrunk_need = policy_.admitChain(app_.events[0]).need;
    observeHarvest(Watts(app_.harvest.value() * 2.0), 50);
    const Volts full_need = policy_.admitChain(app_.events[0]).need;
    EXPECT_GE(shrunk_need.value(), full_need.value() - 1e-9);
}

TEST_F(EabTest, DescribeReportsBankState)
{
    const sched::PolicyDescription desc = policy_.describe();
    EXPECT_EQ(desc.policy, "eab");
    EXPECT_NE(desc.notes.find("banks="), std::string::npos);
    EXPECT_TRUE(desc.has(app_.events[0].chain[0].id));
}

TEST_F(EabTest, EndToEndTrialRunsWithoutBrownouts)
{
    // The registry-made instance drives a real trial on the scalar
    // path (non-stationary), switching banks as the EWMA settles.
    const sched::TrialResult result = TrialBuilder()
                                          .app(app_)
                                          .policy("eab")
                                          .duration(Seconds(60.0))
                                          .seed(5)
                                          .run();
    EXPECT_EQ(result.power_failures, 0u);
    EXPECT_GT(result.eventStats("imu").captureRate(), 0.9);
}

TEST(EabOptions, InvalidOptionsAreFatal)
{
    sched::EnergyAdaptiveBufferOptions zero;
    zero.total_banks = 0;
    EXPECT_THROW(EnergyAdaptiveBufferPolicy{zero}, log::FatalError);

    sched::EnergyAdaptiveBufferOptions ratios;
    ratios.grow_ratio = 0.9;
    ratios.shrink_ratio = 1.1;
    EXPECT_THROW(EnergyAdaptiveBufferPolicy{ratios}, log::FatalError);

    EnergyAdaptiveBufferPolicy uninitialized;
    EXPECT_THROW(uninitialized.activeBanks(), log::FatalError);
}

// --- AdaptiveWorkloadPolicy ---------------------------------------------

class AdaptiveTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        app_ = apps::periodicSensing();
        policy_.initialize(app_);
        voff_ = app_.power.monitor.voff;
        vhigh_ = app_.power.monitor.vhigh;
    }

    sched::AppSpec app_;
    AdaptiveWorkloadPolicy policy_;
    Volts voff_{0.0};
    Volts vhigh_{0.0};
};

TEST_F(AdaptiveTest, UnknownTasksDispatchFromVhigh)
{
    // No profiles: maximum conservatism until evidence arrives.
    for (const auto &task : app_.events[0].chain) {
        EXPECT_FALSE(policy_.estimatedDrop(task.id).has_value());
        EXPECT_DOUBLE_EQ(policy_.admitTask(task).need.value(),
                         vhigh_.value());
    }
    EXPECT_DOUBLE_EQ(policy_.admitChain(app_.events[0]).need.value(),
                     vhigh_.value());
}

TEST_F(AdaptiveTest, CompletionsConvergeOntoObservedDrop)
{
    const auto &task = app_.events[0].chain[0];
    const double drop = 0.24;
    for (int i = 0; i < 16; ++i)
        policy_.observe(completedAt(task, app_.harvest, Volts(2.5),
                                    Volts(2.5 - drop)));
    ASSERT_TRUE(policy_.estimatedDrop(task.id).has_value());
    EXPECT_NEAR(policy_.estimatedDrop(task.id)->value(), drop, 1e-9);
    EXPECT_EQ(policy_.sampleCount(task.id), 16u);
    // The samples were taken at 2.5 V; admitting lower would see a
    // larger drop (~1/V), so the need solves V - drop*2.5/V =
    // voff + margin and sits strictly above the naive sum.
    const double naive = voff_.value() + drop +
                         policy_.options().safety_margin.value();
    const double floor_v =
        voff_.value() + policy_.options().safety_margin.value();
    const double expected =
        0.5 * (floor_v +
               std::sqrt(floor_v * floor_v + 4.0 * drop * 2.5));
    EXPECT_NEAR(policy_.admitTask(task).need.value(), expected, 1e-9);
    EXPECT_GT(policy_.admitTask(task).need.value(), naive);
}

TEST_F(AdaptiveTest, BrownoutBumpsAndNeverLowersEstimate)
{
    const auto &task = app_.events[0].chain[0];
    policy_.observe(
        completedAt(task, app_.harvest, Volts(2.5), Volts(2.3)));
    const double before = policy_.estimatedDrop(task.id)->value();

    TaskOutcome failure =
        completedAt(task, app_.harvest, Volts(2.1), Volts(1.6));
    failure.completed = false;
    policy_.observe(failure);
    const double after = policy_.estimatedDrop(task.id)->value();
    EXPECT_GT(after, before);
    // At least the full started_at-to-Voff budget plus the bump.
    EXPECT_GE(after, (2.1 - 1.6) +
                         policy_.options().brownout_bump.value() - 1e-9);
}

TEST_F(AdaptiveTest, HarvestDriftResetsEstimates)
{
    const auto &task = app_.events[0].chain[0];
    policy_.observe(
        completedAt(task, app_.harvest, Volts(2.5), Volts(2.3)));
    ASSERT_TRUE(policy_.estimatedDrop(task.id).has_value());
    EXPECT_EQ(policy_.harvestResets(), 0u);

    // A 2x harvest step trips the ChargeRateMonitor: all estimates are
    // invalid at the new incoming power (Section V-B).
    policy_.observe(completedAt(task, Watts(app_.harvest.value() * 2.0),
                                Volts(2.5), Volts(2.3)));
    EXPECT_EQ(policy_.harvestResets(), 1u);
    // The triggering outcome itself seeds the fresh estimator.
    EXPECT_EQ(policy_.sampleCount(task.id), 1u);
}

TEST_F(AdaptiveTest, ChainSumsEstimatesClampedAtVhigh)
{
    for (const auto &task : app_.events[0].chain)
        for (int i = 0; i < 8; ++i)
            policy_.observe(completedAt(task, app_.harvest, Volts(2.5),
                                        Volts(2.45)));
    double sum = voff_.value();
    for (const auto &task : app_.events[0].chain)
        sum += policy_.admitTask(task).need.value() - voff_.value();
    EXPECT_NEAR(policy_.admitChain(app_.events[0]).need.value(),
                std::min(sum, vhigh_.value()), 1e-9);
    EXPECT_GE(policy_.admitBackground(app_).need.value(),
              policy_.admitChain(app_.events[0]).need.value() - 1e-9);
}

TEST_F(AdaptiveTest, OnlineEstimatesApproachProfiledThresholds)
{
    // Run real trials: the profile-free estimates must land in a band
    // around the offline-profiled Culpeo thresholds — above the bare
    // physical drop (safe) but far below the Vhigh worst case.
    sched::TrialConfig config;
    config.duration = Seconds(300.0);
    config.seed = 9;
    sched::runTrialWith(app_, policy_, config);

    sched::CulpeoPolicy culpeo;
    culpeo.initialize(app_);
    const auto &imu = app_.events[0].chain[0];
    ASSERT_GT(policy_.sampleCount(imu.id), 0u);
    const double adaptive_need = policy_.admitTask(imu).need.value();
    const double culpeo_need = culpeo.admitTask(imu).need.value();
    // Converged: no longer pinned at the Vhigh worst case...
    EXPECT_LT(adaptive_need, vhigh_.value() - 1e-6);
    // ...and within a deployment-meaningful band of the profiled value.
    EXPECT_NEAR(adaptive_need, culpeo_need, 0.25);
}

TEST_F(AdaptiveTest, DescribeCarriesEstimatorState)
{
    const sched::PolicyDescription desc = policy_.describe();
    EXPECT_EQ(desc.policy, "adaptive");
    EXPECT_NE(desc.notes.find("samples=0"), std::string::npos);
    EXPECT_NE(desc.notes.find("resets=0"), std::string::npos);
    for (const auto &task : app_.events[0].chain) {
        ASSERT_TRUE(desc.has(task.id));
        EXPECT_DOUBLE_EQ(desc.costOf(task.id).threshold.value(),
                         vhigh_.value());
    }
}

TEST(AdaptiveOptions, InvalidOptionsAreFatal)
{
    sched::AdaptiveWorkloadOptions alpha;
    alpha.ewma_alpha = 0.0;
    EXPECT_THROW(AdaptiveWorkloadPolicy{alpha}, log::FatalError);

    sched::AdaptiveWorkloadOptions margin;
    margin.safety_margin = Volts(-0.01);
    EXPECT_THROW(AdaptiveWorkloadPolicy{margin}, log::FatalError);

    AdaptiveWorkloadPolicy uninitialized;
    sched::AppSpec app = apps::periodicSensing();
    EXPECT_THROW(uninitialized.admitTask(app.events[0].chain[0]),
                 log::FatalError);
}

} // namespace
