/**
 * @file
 * Unit tests for the drift-aware safety supervisor: the margin-deficit
 * estimator and its alarm latch, brown-out backoff, demotion and probe
 * re-admission, ceiling handling, and the telemetry mirror.
 *
 * The tests drive the supervisor directly with synthetic outcomes; the
 * closed loop against a drifting simulated power system lives in
 * tests/fuzz/test_drift_supervisor.cpp.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "load/library.hpp"
#include "sched/supervisor.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;
using sched::Admission;
using sched::Supervisor;
using sched::SupervisorOptions;
using sched::TaskHealth;

constexpr double kVoff = 1.6;
constexpr double kVhigh = 2.56;
constexpr double kBase = 2.0; // Policy requirement used throughout.

/**
 * Report a completed run whose reconstructed true requirement sits
 * @p deficit_v above the base requirement: Vmin = admitted - true_req
 * + voff = admitted - (base + deficit) + voff.
 */
void
complete(Supervisor &sup, const std::string &name, double deficit_v,
         Seconds now, double admitted_at = kBase)
{
    const double vmin = admitted_at - (kBase + deficit_v) + kVoff;
    sup.noteOutcome(name, true, Volts(admitted_at), Volts(kBase),
                    Volts(vmin), Volts(kVoff), now);
}

/** Report a brown-out (Vmin clipped at Voff => observed deficit). */
void
brownOut(Supervisor &sup, const std::string &name, Seconds now,
         double admitted_at = kBase, double vmin = kVoff)
{
    sup.noteOutcome(name, false, Volts(admitted_at), Volts(kBase),
                    Volts(vmin), Volts(kVoff), now);
}

TEST(Supervisor, UnknownTasksAreHealthyWithZeroMargin)
{
    Supervisor sup;
    EXPECT_EQ(sup.stateOf("nope"), TaskHealth::Healthy);
    EXPECT_DOUBLE_EQ(sup.marginOf("nope").value(), 0.0);
    EXPECT_DOUBLE_EQ(sup.driftOf("nope").value(), 0.0);

    const Admission a = sup.admitTask("fresh", Volts(kBase),
                                      Volts(kVhigh), Seconds(0.0));
    EXPECT_TRUE(a.admit);
    EXPECT_DOUBLE_EQ(a.need.value(), kBase);
}

TEST(Supervisor, DeficitEstimatorMeasuresModelError)
{
    Supervisor sup;
    // 50 mV of headroom below the base requirement: deficit -50 mV.
    complete(sup, "t", -0.05, Seconds(1.0));
    EXPECT_NEAR(sup.driftOf("t").value(), -0.05, 1e-12);
    // Healthy margin stays at zero: the floor (-50m + 15m slack) is
    // negative.
    EXPECT_DOUBLE_EQ(sup.marginOf("t").value(), 0.0);
    EXPECT_EQ(sup.stats().drift_alarms, 0u);

    // The estimator is an EWMA (alpha 0.3 by default).
    complete(sup, "t", -0.02, Seconds(2.0));
    EXPECT_NEAR(sup.driftOf("t").value(), -0.05 + 0.3 * 0.03, 1e-12);
}

TEST(Supervisor, DeficitIsInvariantToTheMarginItself)
{
    // The same physical run admitted 100 mV higher (margin inflated)
    // sees both admitted_at and Vmin shift together: same deficit.
    Supervisor a;
    Supervisor b;
    const double deficit = -0.03;
    complete(a, "t", deficit, Seconds(1.0), kBase);
    const double admitted_high = kBase + 0.1;
    complete(b, "t", deficit, Seconds(1.0), admitted_high);
    EXPECT_NEAR(a.driftOf("t").value(), b.driftOf("t").value(), 1e-12);
}

TEST(Supervisor, DriftAlarmRaisesTheMarginBeforeAnyBrownOut)
{
    Supervisor sup;
    // Only 2 mV of headroom left: the smoothed deficit (-2 mV) is above
    // the -10 mV alarm level on the first sample.
    complete(sup, "t", -0.002, Seconds(1.0));
    EXPECT_EQ(sup.stats().drift_alarms, 1u);
    EXPECT_GE(sup.stats().margin_inflations, 1u);
    // Margin floored at ewma + drift_slack = -2 mV + 15 mV = 13 mV.
    EXPECT_NEAR(sup.marginOf("t").value(), 0.013, 1e-12);

    // Admission now carries the margin.
    const Admission a = sup.admitTask("t", Volts(kBase), Volts(kVhigh),
                                      Seconds(2.0));
    EXPECT_TRUE(a.admit);
    EXPECT_NEAR(a.need.value(), kBase + 0.013, 1e-12);

    // Drift worsening keeps the floor tracking it; the latched alarm
    // does not re-count.
    complete(sup, "t", 0.01, Seconds(3.0));
    EXPECT_EQ(sup.stats().drift_alarms, 1u);
    EXPECT_GT(sup.marginOf("t").value(), 0.013);
}

TEST(Supervisor, AlarmLatchRearmsWithHysteresis)
{
    Supervisor sup;
    complete(sup, "t", -0.002, Seconds(1.0)); // Alarm 1.
    EXPECT_EQ(sup.stats().drift_alarms, 1u);

    // A strongly negative deficit pulls the EWMA below the re-arm level
    // (-2 * drift_threshold = -20 mV): alarm clears silently.
    complete(sup, "t", -0.5, Seconds(2.0));
    EXPECT_LT(sup.driftOf("t").value(), -0.02);
    EXPECT_EQ(sup.stats().drift_alarms, 1u);

    // Drifting back above -10 mV raises a second alarm.
    for (int i = 0; i < 40 && sup.stats().drift_alarms < 2; ++i)
        complete(sup, "t", -0.002, Seconds(3.0 + i));
    EXPECT_EQ(sup.stats().drift_alarms, 2u);
}

TEST(Supervisor, MarginDecaysOnceTheAlarmClears)
{
    Supervisor sup;
    complete(sup, "t", -0.002, Seconds(1.0)); // Alarm + 13 mV floor.
    const double inflated = sup.marginOf("t").value();
    ASSERT_GT(inflated, 0.0);

    // Deep headroom returns: the EWMA dives, the alarm re-arms, and
    // completions relax the margin multiplicatively toward the floor.
    complete(sup, "t", -0.5, Seconds(2.0));
    double prev = sup.marginOf("t").value();
    for (int i = 0; i < 50; ++i) {
        complete(sup, "t", -0.5, Seconds(3.0 + i));
        const double m = sup.marginOf("t").value();
        EXPECT_LE(m, prev + 1e-15);
        prev = m;
    }
    EXPECT_LT(prev, inflated * 0.5)
        << "margin should forget stale inflation once drift recedes";
}

TEST(Supervisor, BrownOutBackoffDoublesTheMarginStep)
{
    SupervisorOptions opts; // step 20 mV, factor 2, budget 3.
    Supervisor sup(opts);

    // Each brown-out reports Vmin = Voff (clipped), i.e. deficit 0: the
    // EWMA floor contributes 15 mV, and the bumps stack on top.
    brownOut(sup, "t", Seconds(1.0));
    EXPECT_EQ(sup.stateOf("t"), TaskHealth::Recovering);
    EXPECT_NEAR(sup.marginOf("t").value(), 0.015 + 0.020, 1e-12);
    brownOut(sup, "t", Seconds(2.0));
    EXPECT_NEAR(sup.marginOf("t").value(), 0.015 + 0.020 + 0.040, 1e-12);
    brownOut(sup, "t", Seconds(3.0));
    EXPECT_NEAR(sup.marginOf("t").value(),
                0.015 + 0.020 + 0.040 + 0.080, 1e-12);
    EXPECT_EQ(sup.stateOf("t"), TaskHealth::Recovering);
    EXPECT_EQ(sup.stats().retries, 3u);
    EXPECT_EQ(sup.stats().sheds, 0u);

    // Budget (3) exhausted: the fourth consecutive brown-out demotes.
    brownOut(sup, "t", Seconds(4.0));
    EXPECT_EQ(sup.stateOf("t"), TaskHealth::Demoted);
    EXPECT_EQ(sup.stats().retries, 4u);
    EXPECT_EQ(sup.stats().sheds, 1u);
}

TEST(Supervisor, CompletionResetsTheRetryStreak)
{
    Supervisor sup;
    brownOut(sup, "t", Seconds(1.0));
    brownOut(sup, "t", Seconds(2.0));
    complete(sup, "t", -0.1, Seconds(3.0));
    EXPECT_EQ(sup.stateOf("t"), TaskHealth::Healthy);
    // The streak restarts: three more brown-outs stay within budget.
    brownOut(sup, "t", Seconds(4.0));
    brownOut(sup, "t", Seconds(5.0));
    brownOut(sup, "t", Seconds(6.0));
    EXPECT_EQ(sup.stateOf("t"), TaskHealth::Recovering);
}

TEST(Supervisor, DemotedTasksAreRefusedUntilTheProbeIsDue)
{
    SupervisorOptions opts;
    opts.retry_budget = 0; // First brown-out demotes.
    Supervisor sup(opts);
    brownOut(sup, "t", Seconds(10.0));
    ASSERT_EQ(sup.stateOf("t"), TaskHealth::Demoted);

    // Refused while the probe clock (20 s) runs.
    const Admission early = sup.admitTask("t", Volts(kBase),
                                          Volts(kVhigh), Seconds(15.0));
    EXPECT_FALSE(early.admit);
    EXPECT_EQ(sup.stats().shed_skips, 1u);

    // Probe due: re-admitted for one genuine attempt.
    const Admission probe = sup.admitTask("t", Volts(kBase),
                                          Volts(kVhigh), Seconds(31.0));
    EXPECT_TRUE(probe.admit);
    EXPECT_EQ(sup.stats().readmissions, 1u);
    EXPECT_EQ(sup.stateOf("t"), TaskHealth::Recovering);

    // A failed probe re-demotes immediately (budget already spent) and
    // doubles the probe interval.
    brownOut(sup, "t", Seconds(31.5));
    EXPECT_EQ(sup.stateOf("t"), TaskHealth::Demoted);
    EXPECT_FALSE(
        sup.admitTask("t", Volts(kBase), Volts(kVhigh), Seconds(70.0))
            .admit); // 31.5 + 40 = 71.5 not yet reached.
    EXPECT_TRUE(
        sup.admitTask("t", Volts(kBase), Volts(kVhigh), Seconds(72.0))
            .admit);
}

TEST(Supervisor, SuccessfulProbeRestoresHealth)
{
    SupervisorOptions opts;
    opts.retry_budget = 0;
    Supervisor sup(opts);
    brownOut(sup, "t", Seconds(0.0));
    ASSERT_TRUE(sup.admitTask("t", Volts(kBase), Volts(kVhigh),
                              Seconds(25.0))
                    .admit);
    complete(sup, "t", -0.1, Seconds(25.5));
    EXPECT_EQ(sup.stateOf("t"), TaskHealth::Healthy);
}

TEST(Supervisor, InflatedRequirementBeyondCeilingDemotes)
{
    Supervisor sup;
    // Inflate the margin with two brown-outs (15 + 20 + 40 = 75 mV).
    brownOut(sup, "t", Seconds(1.0));
    brownOut(sup, "t", Seconds(2.0));
    const double margin = sup.marginOf("t").value();
    ASSERT_GT(margin, 0.05);

    // A base requirement whose margined need clears the ceiling demotes
    // on the spot instead of waiting forever.
    const double base = kVhigh - 0.02; // cap = vhigh - 10 mV slack.
    const Admission a = sup.admitTask("t", Volts(base), Volts(kVhigh),
                                      Seconds(3.0));
    EXPECT_FALSE(a.admit);
    EXPECT_EQ(sup.stateOf("t"), TaskHealth::Demoted);
    EXPECT_EQ(sup.stats().sheds, 1u);
}

TEST(Supervisor, BaseNeedAboveCeilingGetsOneClampedAttempt)
{
    Supervisor sup;
    // No margin policy can help when the *base* requirement already
    // exceeds the reachable ceiling: admit from the best reachable
    // voltage and let the outcome decide.
    const double base = kVhigh + 0.1;
    const Admission a = sup.admitTask("t", Volts(base), Volts(kVhigh),
                                      Seconds(1.0));
    EXPECT_TRUE(a.admit);
    EXPECT_DOUBLE_EQ(a.need.value(), base);
}

TEST(Supervisor, UnreachableWaitDemotesImmediately)
{
    Supervisor sup;
    sup.noteUnreachable("t", Seconds(5.0));
    EXPECT_EQ(sup.stateOf("t"), TaskHealth::Demoted);
    EXPECT_EQ(sup.stats().sheds, 1u);
    // Already demoted: a second report does not double-shed.
    sup.noteUnreachable("t", Seconds(6.0));
    EXPECT_EQ(sup.stats().sheds, 1u);
}

TEST(Supervisor, ChainAdmissionRefusesDemotedLinks)
{
    SupervisorOptions opts;
    opts.retry_budget = 0;
    Supervisor sup(opts);
    brownOut(sup, "mid", Seconds(0.0));
    ASSERT_EQ(sup.stateOf("mid"), TaskHealth::Demoted);

    sched::EventSpec spec;
    spec.name = "evt";
    spec.chain = {{1, "head", load::uniform(1.0_mA, 1.0_ms)},
                  {2, "mid", load::uniform(1.0_mA, 1.0_ms)}};
    EXPECT_FALSE(sup.admitChain(spec, Seconds(5.0)));
    // Probe due: the chain may try again.
    EXPECT_TRUE(sup.admitChain(spec, Seconds(25.0)));

    sched::EventSpec other;
    other.name = "other";
    other.chain = {{3, "tail", load::uniform(1.0_mA, 1.0_ms)}};
    EXPECT_TRUE(sup.admitChain(other, Seconds(5.0)));
}

TEST(Supervisor, MaxMarginCapsInflation)
{
    SupervisorOptions opts;
    opts.retry_budget = 100; // Never demote in this test.
    opts.max_margin = Volts(0.1);
    Supervisor sup(opts);
    for (int i = 0; i < 10; ++i)
        brownOut(sup, "t", Seconds(double(i)));
    EXPECT_DOUBLE_EQ(sup.marginOf("t").value(), 0.1);
}

TEST(Supervisor, ResetForgetsEverything)
{
    Supervisor sup;
    brownOut(sup, "t", Seconds(1.0));
    ASSERT_GT(sup.stats().retries, 0u);
    sup.reset();
    EXPECT_EQ(sup.stats().retries, 0u);
    EXPECT_EQ(sup.stateOf("t"), TaskHealth::Healthy);
    EXPECT_DOUBLE_EQ(sup.marginOf("t").value(), 0.0);
    EXPECT_DOUBLE_EQ(sup.driftOf("t").value(), 0.0);
}

TEST(Supervisor, TelemetryMirrorsStatsAndTracesDecisions)
{
    if (!telemetry::kEnabled)
        GTEST_SKIP() << "built with CULPEO_TELEMETRY=OFF";

    SupervisorOptions opts;
    opts.retry_budget = 0;
    Supervisor sup(opts);
    telemetry::Telemetry sink;
    sup.onTelemetry(&sink);

    complete(sup, "t", -0.002, Seconds(1.0)); // Drift alarm + inflation.
    brownOut(sup, "t", Seconds(2.0));         // Retry, then demotion.
    ASSERT_EQ(sup.stateOf("t"), TaskHealth::Demoted);
    EXPECT_FALSE(sup.admitTask("t", Volts(kBase), Volts(kVhigh),
                               Seconds(3.0))
                     .admit);                 // Shed skip.
    EXPECT_TRUE(sup.admitTask("t", Volts(kBase), Volts(kVhigh),
                              Seconds(30.0))
                    .admit);                  // Probe readmission.

    const auto counter = [&](const char *name) -> std::uint64_t {
        const telemetry::Counter *c = sink.registry().findCounter(name);
        return c == nullptr ? 0 : c->value();
    };
    namespace names = telemetry::names;
    const sched::SupervisorStats &stats = sup.stats();
    EXPECT_EQ(counter(names::kSupervisorDriftAlarms), stats.drift_alarms);
    EXPECT_EQ(counter(names::kSupervisorMarginInflations),
              stats.margin_inflations);
    EXPECT_EQ(counter(names::kSupervisorRetries), stats.retries);
    EXPECT_EQ(counter(names::kSupervisorSheds), stats.sheds);
    EXPECT_EQ(counter(names::kSupervisorShedSkips), stats.shed_skips);
    EXPECT_EQ(counter(names::kSupervisorReadmissions),
              stats.readmissions);
    EXPECT_GE(stats.drift_alarms, 1u);
    EXPECT_GE(stats.retries, 1u);
    EXPECT_GE(stats.sheds, 1u);
    EXPECT_GE(stats.shed_skips, 1u);
    EXPECT_GE(stats.readmissions, 1u);

    // Every decision kind appears in the exported JSONL trace.
    std::ostringstream jsonl;
    sink.writeJsonl(jsonl);
    const std::string trace = jsonl.str();
    for (const char *kind : {"drift_alarm", "margin_update", "task_retry",
                             "task_shed", "task_readmit"}) {
        EXPECT_NE(trace.find(kind), std::string::npos)
            << "missing " << kind << " in:\n"
            << trace;
    }
    sup.onTelemetry(nullptr);
}

TEST(Supervisor, NoTelemetrySinkStillCountsStats)
{
    Supervisor sup;
    brownOut(sup, "t", Seconds(1.0));
    EXPECT_EQ(sup.stats().retries, 1u);
    EXPECT_GE(sup.stats().margin_inflations, 1u);
}

} // namespace
