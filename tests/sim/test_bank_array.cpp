/** @file Unit tests for the reconfigurable energy-storage array. */

#include <gtest/gtest.h>

#include "sim/bank_array.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using sim::BankArray;
using sim::BankArrayConfig;

TEST(BankArray, CapybaraArraySumsToFullBank)
{
    const BankArray array(sim::capybaraBankArray());
    const auto all = array.capacitorFor(3);
    EXPECT_NEAR(all.capacitance.value(), 45e-3, 1e-12);
    // Full array matches the monolithic Capybara bank up to the switch
    // resistance.
    const auto mono = sim::capybaraConfig().capacitor;
    EXPECT_NEAR(all.bulk_resistance.value(),
                mono.bulk_resistance.value(), 1e-9);
    EXPECT_NEAR(all.surface_resistance.value(),
                mono.surface_resistance.value(), 1e-9);
    EXPECT_NEAR(all.series_esr.value(),
                mono.series_esr.value() + 0.15 / 3.0, 1e-9);
}

TEST(BankArray, MoreBanksMeanLowerEsr)
{
    const BankArray array(sim::capybaraBankArray());
    const double one = array.capacitorFor(1).sustainedEsr().value();
    const double two = array.capacitorFor(2).sustainedEsr().value();
    const double three = array.capacitorFor(3).sustainedEsr().value();
    EXPECT_GT(one, two);
    EXPECT_GT(two, three);
}

TEST(BankArray, LeakageScalesWithActiveBanks)
{
    const BankArray array(sim::capybaraBankArray());
    EXPECT_NEAR(array.capacitorFor(2).leakage.value(), 80e-9, 1e-15);
}

TEST(BankArray, PowerSystemForSwapsOnlyTheCapacitor)
{
    const BankArray array(sim::capybaraBankArray());
    const auto base = sim::capybaraConfig();
    const auto small = array.powerSystemFor(1, base);
    EXPECT_NEAR(small.capacitor.capacitance.value(), 15e-3, 1e-12);
    EXPECT_DOUBLE_EQ(small.monitor.vhigh.value(),
                     base.monitor.vhigh.value());
    EXPECT_DOUBLE_EQ(small.output.vout.value(), base.output.vout.value());
}

TEST(BankArray, RechargeEstimateScalesWithCapacitance)
{
    const BankArray array(sim::capybaraBankArray());
    const auto base = sim::capybaraConfig();
    const double one =
        array.rechargeEstimate(1, Watts(2e-3), base).value();
    const double three =
        array.rechargeEstimate(3, Watts(2e-3), base).value();
    EXPECT_NEAR(three, 3.0 * one, 1e-9);
    // Sanity: 15 mF from 1.6 to 2.56 V at 1.6 mW effective is ~18.7 s.
    EXPECT_NEAR(one, 0.5 * 15e-3 * (2.56 * 2.56 - 1.6 * 1.6) /
                         (2e-3 * 0.8),
                0.5);
}

TEST(BankArray, SmallConfigFailsTaskThatBigConfigRuns)
{
    // The Capybara premise: high-current tasks need more banks; small
    // configurations recharge faster but cannot source the radio.
    const BankArray array(sim::capybaraBankArray());
    const auto base = sim::capybaraConfig();

    auto min_terminal = [&](unsigned active) {
        sim::PowerSystem system(array.powerSystemFor(active, base));
        system.setBufferVoltage(Volts(2.2));
        system.forceOutputEnabled(true);
        double vmin = 10.0;
        for (int i = 0; i < 400; ++i) {
            const auto step = system.step(Seconds(1e-4), Amps(0.04));
            vmin = std::min(vmin, step.terminal.value());
        }
        return vmin;
    };
    EXPECT_LT(min_terminal(1), 1.6);
    EXPECT_GT(min_terminal(3), 1.6);
}

TEST(BankArray, Validation)
{
    BankArrayConfig cfg = sim::capybaraBankArray();
    const BankArray array(cfg);
    EXPECT_THROW(array.capacitorFor(0), log::FatalError);
    EXPECT_THROW(array.capacitorFor(4), log::FatalError);
    EXPECT_THROW(array.rechargeEstimate(1, Watts(0.0),
                                        sim::capybaraConfig()),
                 log::FatalError);
    cfg.total_banks = 0;
    EXPECT_THROW(BankArray{cfg}, log::FatalError);
}

} // namespace
