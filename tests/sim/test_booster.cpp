/** @file Unit tests for the output/input booster models. */

#include <gtest/gtest.h>

#include "sim/booster.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using sim::BoosterDraw;
using sim::Capacitor;
using sim::CapacitorConfig;
using sim::Efficiency;
using sim::InputBooster;
using sim::InputBoosterConfig;
using sim::OutputBooster;
using sim::OutputBoosterConfig;

Capacitor
chargedCap(double volts = 2.5)
{
    Capacitor cap = Capacitor(CapacitorConfig{});
    cap.setOpenCircuitVoltage(Volts(volts));
    return cap;
}

TEST(Efficiency, LinearLine)
{
    Efficiency eta;
    eta.slope = 0.05;
    eta.intercept = 0.7;
    eta.curvature = 0.0;
    EXPECT_NEAR(eta.at(Volts(2.0)), 0.8, 1e-12);
}

TEST(Efficiency, ClampsToBounds)
{
    Efficiency eta;
    eta.slope = 1.0;
    eta.intercept = 0.0;
    EXPECT_DOUBLE_EQ(eta.at(Volts(10.0)), eta.max_eta);
    EXPECT_DOUBLE_EQ(eta.at(Volts(0.0)), eta.min_eta);
}

TEST(Efficiency, CurvatureLowersEfficiencyAwayFromReference)
{
    Efficiency eta;
    eta.slope = 0.05;
    eta.intercept = 0.7;
    eta.curvature = 0.02;
    eta.v_ref = 2.56;
    EXPECT_LT(eta.at(Volts(1.6)), 0.05 * 1.6 + 0.7);
    EXPECT_NEAR(eta.at(Volts(2.56)), 0.05 * 2.56 + 0.7, 1e-9);
}

TEST(Efficiency, CurrentDroop)
{
    Efficiency eta;
    eta.current_coeff = 0.5;
    EXPECT_LT(eta.at(Volts(2.0), Amps(0.05)), eta.at(Volts(2.0)));
}

TEST(Efficiency, LinearApproxStripsNonlinearities)
{
    Efficiency eta;
    eta.curvature = 0.02;
    eta.current_coeff = 0.5;
    const Efficiency linear = eta.linearApprox();
    EXPECT_EQ(linear.curvature, 0.0);
    EXPECT_EQ(linear.current_coeff, 0.0);
    EXPECT_EQ(linear.slope, eta.slope);
    EXPECT_EQ(linear.intercept, eta.intercept);
}

TEST(OutputBooster, ZeroLoadDrawsOnlyQuiescent)
{
    OutputBoosterConfig cfg;
    cfg.quiescent = Amps(55e-6);
    const OutputBooster booster(cfg);
    const Capacitor cap = chargedCap();
    const BoosterDraw draw = booster.computeDraw(cap, Amps(0.0));
    EXPECT_FALSE(draw.collapsed);
    EXPECT_NEAR(draw.input_current.value(), 55e-6, 1e-9);
}

TEST(OutputBooster, InputPowerCoversOutputPowerOverEfficiency)
{
    const OutputBooster booster{OutputBoosterConfig{}};
    const Capacitor cap = chargedCap();
    const Amps load(0.02);
    const BoosterDraw draw = booster.computeDraw(cap, load);
    ASSERT_FALSE(draw.collapsed);
    const double pout = booster.vout().value() * load.value();
    const double pin = (draw.input_current.value() - 55e-6) *
                       draw.terminal_voltage.value();
    EXPECT_NEAR(pin, pout / draw.efficiency, pout * 0.05);
}

TEST(OutputBooster, InputCurrentExceedsLoadWhenBoosting)
{
    // Boosting 2.0 V up to 2.55 V at ~85% efficiency needs more input
    // current than output current.
    const OutputBooster booster{OutputBoosterConfig{}};
    Capacitor cap = chargedCap(2.0);
    const BoosterDraw draw = booster.computeDraw(cap, Amps(0.05));
    ASSERT_FALSE(draw.collapsed);
    EXPECT_GT(draw.input_current.value(), 0.05);
}

TEST(OutputBooster, LowerBufferVoltageDrawsMoreCurrent)
{
    const OutputBooster booster{OutputBoosterConfig{}};
    const BoosterDraw high = booster.computeDraw(chargedCap(2.5),
                                                 Amps(0.05));
    const BoosterDraw low = booster.computeDraw(chargedCap(1.8),
                                                Amps(0.05));
    ASSERT_FALSE(high.collapsed);
    ASSERT_FALSE(low.collapsed);
    EXPECT_GT(low.input_current.value(), high.input_current.value());
}

TEST(OutputBooster, CollapsesWhenPowerExceedsMaxTransfer)
{
    // Max power through Rth at Voc is Voc^2 / (4 Rth); demand more.
    const OutputBooster booster{OutputBoosterConfig{}};
    const Capacitor cap = chargedCap(0.9);
    const BoosterDraw draw = booster.computeDraw(cap, Amps(0.2));
    EXPECT_TRUE(draw.collapsed);
}

TEST(OutputBooster, CollapsesOnEmptyBuffer)
{
    const OutputBooster booster{OutputBoosterConfig{}};
    Capacitor cap = Capacitor(CapacitorConfig{});
    cap.setOpenCircuitVoltage(Volts(0.0));
    EXPECT_TRUE(booster.computeDraw(cap, Amps(0.01)).collapsed);
}

TEST(OutputBooster, DropoutMarksCollapse)
{
    OutputBoosterConfig cfg;
    cfg.dropout = Volts(2.3);
    const OutputBooster booster(cfg);
    // Terminal under load lands below 2.3 V from a 2.4 V buffer.
    const BoosterDraw draw = booster.computeDraw(chargedCap(2.4),
                                                 Amps(0.05));
    EXPECT_TRUE(draw.collapsed);
}

TEST(OutputBooster, ConfigValidation)
{
    OutputBoosterConfig cfg;
    cfg.vout = Volts(0.0);
    EXPECT_THROW(OutputBooster{cfg}, culpeo::log::FatalError);
}

TEST(InputBooster, DeliversEfficiencyScaledPower)
{
    InputBoosterConfig cfg;
    cfg.efficiency = 0.8;
    const InputBooster booster(cfg);
    const Amps i = booster.chargeCurrent(Watts(10e-3), Volts(2.0));
    EXPECT_NEAR(i.value(), 0.8 * 10e-3 / 2.0, 1e-12);
}

TEST(InputBooster, StopsAtVhigh)
{
    const InputBooster booster{InputBoosterConfig{}};
    EXPECT_EQ(booster.chargeCurrent(Watts(10e-3), Volts(2.56)).value(),
              0.0);
    EXPECT_EQ(booster.chargeCurrent(Watts(10e-3), Volts(3.0)).value(), 0.0);
}

TEST(InputBooster, ZeroHarvestZeroCurrent)
{
    const InputBooster booster{InputBoosterConfig{}};
    EXPECT_EQ(booster.chargeCurrent(Watts(0.0), Volts(1.0)).value(), 0.0);
}

TEST(InputBooster, CurrentClampNearEmptyBuffer)
{
    InputBoosterConfig cfg;
    cfg.max_charge_current = Amps(0.2);
    const InputBooster booster(cfg);
    const Amps i = booster.chargeCurrent(Watts(1.0), Volts(0.01));
    EXPECT_DOUBLE_EQ(i.value(), 0.2);
}

TEST(InputBooster, ConfigValidation)
{
    InputBoosterConfig cfg;
    cfg.efficiency = 1.5;
    EXPECT_THROW(InputBooster{cfg}, culpeo::log::FatalError);
}

} // namespace
