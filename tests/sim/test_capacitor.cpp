/** @file Unit tests for the two-branch supercapacitor model. */

#include <gtest/gtest.h>

#include "sim/capacitor.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using sim::Capacitor;
using sim::CapacitorConfig;
using sim::EsrCurve;

CapacitorConfig
capybaraBank()
{
    CapacitorConfig cfg;
    cfg.capacitance = Farads(45e-3);
    cfg.series_esr = Ohms(1.5);
    cfg.surface_fraction = 0.15;
    cfg.bulk_resistance = Ohms(9.0);
    cfg.surface_resistance = Ohms(1.2);
    cfg.leakage = Amps(120e-9);
    return cfg;
}

TEST(EsrCurve, FlatCurveReturnsSameValueEverywhere)
{
    const EsrCurve curve = EsrCurve::flat(Ohms(8.0));
    EXPECT_DOUBLE_EQ(curve.at(Hertz(0.01)).value(), 8.0);
    EXPECT_DOUBLE_EQ(curve.at(Hertz(1e5)).value(), 8.0);
    EXPECT_DOUBLE_EQ(curve.dcEsr().value(), 8.0);
}

TEST(EsrCurve, InterpolatesLogLog)
{
    const EsrCurve curve({{Hertz(1.0), Ohms(10.0)},
                          {Hertz(100.0), Ohms(1.0)}});
    // Geometric midpoint of the frequency range maps to the geometric
    // midpoint of the resistance range under log-log interpolation.
    EXPECT_NEAR(curve.at(Hertz(10.0)).value(), std::sqrt(10.0), 1e-9);
}

TEST(EsrCurve, ClampsOutsideRange)
{
    const EsrCurve curve({{Hertz(1.0), Ohms(10.0)},
                          {Hertz(100.0), Ohms(1.0)}});
    EXPECT_DOUBLE_EQ(curve.at(Hertz(0.1)).value(), 10.0);
    EXPECT_DOUBLE_EQ(curve.at(Hertz(1e6)).value(), 1.0);
}

TEST(EsrCurve, PulseWidthMapsToHalfPeriod)
{
    const EsrCurve curve({{Hertz(1.0), Ohms(10.0)},
                          {Hertz(100.0), Ohms(1.0)}});
    // Width w maps to f = 1/(2w); w = 50 ms -> 10 Hz.
    EXPECT_NEAR(curve.forPulseWidth(Seconds(0.05)).value(),
                curve.at(Hertz(10.0)).value(), 1e-12);
}

TEST(EsrCurve, RejectsBadInputs)
{
    EXPECT_THROW(EsrCurve({}), culpeo::log::FatalError);
    EXPECT_THROW(EsrCurve({{Hertz(0.0), Ohms(1.0)}}), culpeo::log::FatalError);
    EXPECT_THROW(EsrCurve({{Hertz(1.0), Ohms(-1.0)}}), culpeo::log::FatalError);
    EXPECT_THROW(EsrCurve({{Hertz(1.0), Ohms(1.0)},
                           {Hertz(1.0), Ohms(2.0)}}),
                 culpeo::log::FatalError);
}

TEST(CapacitorConfig, BranchSplitSumsToTotal)
{
    const CapacitorConfig cfg = capybaraBank();
    EXPECT_NEAR(cfg.bulkCapacitance().value() +
                    cfg.surfaceCapacitance().value(),
                0.045, 1e-12);
}

TEST(CapacitorConfig, InstantaneousBelowSustainedEsr)
{
    const CapacitorConfig cfg = capybaraBank();
    EXPECT_LT(cfg.instantaneousEsr().value(), cfg.sustainedEsr().value());
    // Anchors: ~2.6 ohm instantaneous, ~8 ohm sustained.
    EXPECT_NEAR(cfg.instantaneousEsr().value(), 2.56, 0.05);
    EXPECT_NEAR(cfg.sustainedEsr().value(), 8.03, 0.05);
}

TEST(CapacitorConfig, ApparentEsrGrowsWithPulseWidth)
{
    const CapacitorConfig cfg = capybaraBank();
    const double r1 = cfg.apparentEsrForWidth(Seconds(1e-3)).value();
    const double r10 = cfg.apparentEsrForWidth(Seconds(10e-3)).value();
    const double r100 = cfg.apparentEsrForWidth(Seconds(100e-3)).value();
    EXPECT_LT(r1, r10);
    EXPECT_LT(r10, r100);
    EXPECT_GT(r1, cfg.instantaneousEsr().value() - 1e-9);
    EXPECT_LT(r100, cfg.sustainedEsr().value());
}

TEST(CapacitorConfig, ProfiledCurveMatchesAnalyticEsr)
{
    const CapacitorConfig cfg = capybaraBank();
    const EsrCurve curve = cfg.profiledEsrCurve();
    for (double w : {1e-3, 10e-3, 100e-3}) {
        EXPECT_NEAR(curve.forPulseWidth(Seconds(w)).value(),
                    cfg.apparentEsrForWidth(Seconds(w)).value(),
                    0.25);
    }
}

TEST(CapacitorConfig, AgingScalesEsrAndCapacitance)
{
    CapacitorConfig cfg = capybaraBank();
    cfg.esr_multiplier = 2.0;
    cfg.capacitance_fraction = 0.8;
    EXPECT_NEAR(cfg.sustainedEsr().value(), 2.0 * 8.03, 0.2);
    const Capacitor cap(cfg);
    EXPECT_NEAR(cap.capacitance().value(), 0.045 * 0.8, 1e-12);
}

TEST(Capacitor, SetVoltageEqualizesBranches)
{
    Capacitor cap(capybaraBank());
    cap.setOpenCircuitVoltage(Volts(2.5));
    EXPECT_DOUBLE_EQ(cap.bulkVoltage().value(), 2.5);
    EXPECT_DOUBLE_EQ(cap.surfaceVoltage().value(), 2.5);
    EXPECT_DOUBLE_EQ(cap.openCircuitVoltage().value(), 2.5);
    EXPECT_DOUBLE_EQ(cap.terminalVoltage(Amps(0.0)).value(), 2.5);
}

TEST(Capacitor, TerminalDropsUnderLoadByTheveninResistance)
{
    Capacitor cap(capybaraBank());
    cap.setOpenCircuitVoltage(Volts(2.5));
    const double rth = cap.theveninResistance().value();
    EXPECT_NEAR(cap.terminalVoltage(Amps(0.05)).value(),
                2.5 - 0.05 * rth, 1e-12);
}

TEST(Capacitor, ChargeConservationUnderDischarge)
{
    Capacitor cap(capybaraBank());
    cap.setOpenCircuitVoltage(Volts(2.5));
    const double dt = 50e-6;
    const double i = 0.02;
    double elapsed = 0.0;
    while (elapsed < 0.5) {
        cap.step(Seconds(dt), Amps(i));
        elapsed += dt;
    }
    // Delivered charge i*t lowers the charge-weighted OCV by i*t/C
    // (leakage adds a negligible extra).
    const double expected = 2.5 - i * 0.5 / 0.045;
    EXPECT_NEAR(cap.openCircuitVoltage().value(), expected, 2e-3);
}

TEST(Capacitor, SustainedLoadSagsDeeperThanInstantaneous)
{
    Capacitor cap(capybaraBank());
    cap.setOpenCircuitVoltage(Volts(2.5));
    const Amps load(0.05);
    const double v_first = cap.terminalVoltage(load).value();
    double elapsed = 0.0;
    while (elapsed < 0.2) {
        cap.step(Seconds(1e-4), load);
        elapsed += 1e-4;
    }
    const double v_later = cap.terminalVoltage(load).value();
    // The drop relative to the OCV must have grown as the surface
    // branch depleted (apparent ESR rose toward the sustained value).
    const double drop_first = 2.5 - v_first;
    const double drop_later = cap.openCircuitVoltage().value() - v_later;
    EXPECT_GT(drop_later, drop_first * 1.5);
}

TEST(Capacitor, ReboundIsPartialInstantlyAndFullOverTime)
{
    Capacitor cap(capybaraBank());
    cap.setOpenCircuitVoltage(Volts(2.5));
    // Sustained load long enough to split the branches.
    for (int i = 0; i < 2000; ++i)
        cap.step(Seconds(1e-4), Amps(0.05));
    const double v_loaded = cap.terminalVoltage(Amps(0.05)).value();
    const double v_unloaded_now = cap.terminalVoltage(Amps(0.0)).value();
    // Removing the load rebounds instantly by roughly I * Rth...
    EXPECT_GT(v_unloaded_now, v_loaded + 0.05);
    // ...but the redistribution recovery takes tens of ms more.
    for (int i = 0; i < 5000; ++i)
        cap.step(Seconds(1e-4), Amps(0.0));
    const double v_settled = cap.terminalVoltage(Amps(0.0)).value();
    EXPECT_GT(v_settled, v_unloaded_now + 0.02);
}

TEST(Capacitor, LeakageDrainsIdleBuffer)
{
    CapacitorConfig cfg = capybaraBank();
    cfg.leakage = Amps(1e-6);
    Capacitor cap(cfg);
    cap.setOpenCircuitVoltage(Volts(2.0));
    for (int i = 0; i < 1000; ++i)
        cap.step(Seconds(1.0), Amps(0.0));
    // 1 uA for 1000 s from 45 mF: dV = 22.2 mV.
    EXPECT_NEAR(cap.openCircuitVoltage().value(), 2.0 - 1e-3 / 0.045,
                1e-3);
}

TEST(Capacitor, VoltageNeverGoesNegative)
{
    Capacitor cap(capybaraBank());
    cap.setOpenCircuitVoltage(Volts(0.05));
    for (int i = 0; i < 100000; ++i)
        cap.step(Seconds(1e-3), Amps(0.1));
    EXPECT_GE(cap.bulkVoltage().value(), 0.0);
    EXPECT_GE(cap.surfaceVoltage().value(), 0.0);
}

TEST(Capacitor, NegativeCurrentCharges)
{
    Capacitor cap(capybaraBank());
    cap.setOpenCircuitVoltage(Volts(1.0));
    for (int i = 0; i < 1000; ++i)
        cap.step(Seconds(1e-3), Amps(-0.01));
    EXPECT_GT(cap.openCircuitVoltage().value(), 1.2);
}

TEST(Capacitor, StoredEnergyMatchesBranchSum)
{
    Capacitor cap(capybaraBank());
    cap.setOpenCircuitVoltage(Volts(2.0));
    EXPECT_NEAR(cap.storedEnergy().value(), 0.5 * 0.045 * 4.0, 1e-9);
}

TEST(Capacitor, ConfigValidation)
{
    CapacitorConfig cfg = capybaraBank();
    cfg.surface_fraction = 0.0;
    EXPECT_THROW(Capacitor{cfg}, culpeo::log::FatalError);
    cfg = capybaraBank();
    cfg.esr_multiplier = 0.5;
    EXPECT_THROW(Capacitor{cfg}, culpeo::log::FatalError);
    cfg = capybaraBank();
    cfg.capacitance = Farads(0.0);
    EXPECT_THROW(Capacitor{cfg}, culpeo::log::FatalError);
    cfg = capybaraBank();
    EXPECT_THROW(Capacitor(cfg).step(Seconds(0.0), Amps(0.0)),
                 culpeo::log::FatalError);
}

} // namespace
