/** @file Unit tests for the sim::Device execution layer. */

#include <gtest/gtest.h>

#include <cmath>

#include "load/library.hpp"
#include "sim/device.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;
using sim::Device;
using sim::DeviceOptions;
using sim::WaitResult;
using sim::WaitStatus;

/** A charged, enabled device with the given harvester attached. */
Device
chargedDevice(const sim::Harvester *harvester, Volts vstart,
              DeviceOptions options = {})
{
    Device device(sim::capybaraConfig(), options);
    device.setHarvester(harvester);
    device.setBufferVoltage(vstart);
    device.forceOutputEnabled(true);
    return device;
}

/** now() must sit on the idle_dt decision grid after a wait. */
void
expectOnGrid(const Device &device)
{
    const double dt = device.options().idle_dt.value();
    const double ticks = device.now().value() / dt;
    EXPECT_NEAR(ticks, std::round(ticks), 1e-6)
        << "now() = " << device.now().value() << " is off the tick grid";
}

TEST(DeviceWait, ReachesThresholdUnderCharge)
{
    const sim::ConstantHarvester harvester(Watts(10e-3));
    Device device = chargedDevice(&harvester, Volts(1.9));
    const WaitResult wait =
        device.idleUntilVoltage(Volts(2.1), Seconds(60.0));
    EXPECT_EQ(wait.status, WaitStatus::Reached);
    EXPECT_GE(wait.voltage.value(), 2.1);
    EXPECT_GT(wait.elapsed.value(), 0.0);
    expectOnGrid(device);
}

TEST(DeviceWait, DeadlineExpiresBeforeThreshold)
{
    const sim::ConstantHarvester harvester(Watts(10e-3));
    Device device = chargedDevice(&harvester, Volts(1.9));
    const WaitResult wait =
        device.idleUntilVoltage(Volts(2.5), Seconds(0.05));
    EXPECT_EQ(wait.status, WaitStatus::DeadlineExpired);
    EXPECT_GT(device.now().value(), 0.05);
    // The expiry is noticed at the first decision tick past the
    // deadline, not some arbitrary macro-step later.
    EXPECT_LT(device.now().value(),
              0.05 + 2.0 * device.options().idle_dt.value());
}

TEST(DeviceWait, ZeroHarvestThresholdIsUnreachable)
{
    Device device = chargedDevice(nullptr, Volts(1.9));
    const WaitResult wait =
        device.idleUntilVoltage(Volts(2.1), Seconds(600.0));
    EXPECT_EQ(wait.status, WaitStatus::Unreachable);
    EXPECT_FALSE(wait.diagnostic.empty());
    // The fast path proves unreachability from the equilibrium current;
    // no simulated time is wasted idling toward the timeout.
    EXPECT_LT(device.now().value(), 1.0);
}

TEST(DeviceWait, ThresholdAboveVhighIsUnreachable)
{
    // The input booster stops charging at Vhigh, so no harvest rate can
    // lift the buffer above it (satellite fix: the old loops spun on
    // this until their caller's timeout).
    const sim::ConstantHarvester harvester(Watts(50e-3));
    Device device = chargedDevice(&harvester, Volts(2.2));
    const WaitResult wait = device.idleUntilVoltage(
        device.vhigh() + Volts(0.1), Seconds(600.0));
    EXPECT_EQ(wait.status, WaitStatus::Unreachable);
    EXPECT_FALSE(wait.diagnostic.empty());
}

TEST(DeviceWait, EulerBackendDetectsUnreachableByStall)
{
    DeviceOptions options;
    options.allow_fast_path = false;
    options.stall_window = Seconds(0.5);
    // Wide enough that the harvester-less buffer's slow leakage decay
    // (well under a millivolt per window) reads as no progress instead
    // of re-anchoring the stall detector until brown-out.
    options.stall_epsilon = Volts(5e-3);
    Device device = chargedDevice(nullptr, Volts(1.9), options);
    const WaitResult wait =
        device.idleUntilVoltage(Volts(2.1), Seconds(600.0));
    EXPECT_EQ(wait.status, WaitStatus::Unreachable);
    EXPECT_FALSE(wait.diagnostic.empty());
    // Detection costs one stall window, not the full timeout.
    EXPECT_LT(device.now().value(), 1.0);
}

TEST(DeviceWait, BrownOutEndsTheWait)
{
    // Start below Voff with the output forced on: the monitor trips on
    // the first step and the wait reports the brown-out instead of the
    // threshold.
    const sim::ConstantHarvester harvester(Watts(2e-3));
    Device device = chargedDevice(&harvester, Volts(1.5));
    const WaitResult wait =
        device.idleUntilVoltage(Volts(2.2), Seconds(60.0));
    EXPECT_EQ(wait.status, WaitStatus::BrownedOut);
    EXPECT_FALSE(device.on());
}

TEST(DeviceWait, RechargeToRidesThroughBrownOut)
{
    // Same start, but rechargeTo treats the monitor tripping as part of
    // the recharge, not a failure.
    const sim::ConstantHarvester harvester(Watts(10e-3));
    Device device = chargedDevice(&harvester, Volts(1.5));
    const WaitResult wait = device.rechargeTo(Volts(2.2));
    EXPECT_EQ(wait.status, WaitStatus::Reached);
    EXPECT_GE(device.restingVoltage().value(), 2.2 - 1e-3);
}

TEST(DeviceWait, RechargeUntilOnReachesVhigh)
{
    const sim::ConstantHarvester harvester(Watts(10e-3));
    Device device(sim::capybaraConfig());
    device.setHarvester(&harvester);
    device.setBufferVoltage(Volts(1.8)); // Below Vhigh: output off.
    EXPECT_FALSE(device.on());
    const WaitResult wait = device.rechargeUntilOn(Seconds(600.0));
    EXPECT_EQ(wait.status, WaitStatus::Reached);
    EXPECT_TRUE(device.on());
    EXPECT_GE(device.restingVoltage().value(),
              device.vhigh().value() - 0.05);
}

TEST(DeviceWait, RechargeUntilOnWithoutHarvestIsUnreachable)
{
    Device device(sim::capybaraConfig());
    device.setBufferVoltage(Volts(1.8));
    const WaitResult wait = device.rechargeUntilOn(Seconds(600.0));
    EXPECT_EQ(wait.status, WaitStatus::Unreachable);
    EXPECT_FALSE(wait.diagnostic.empty());
    EXPECT_LT(device.now().value(), 1.0);
}

TEST(DeviceIdle, IdleForRoundsUpToTheTickGrid)
{
    const sim::ConstantHarvester harvester(Watts(5e-3));
    Device device = chargedDevice(&harvester, Volts(2.0));
    device.idleFor(Seconds(3.7e-3));
    EXPECT_NEAR(device.now().value(), 4e-3, 1e-9);
    device.idleFor(Seconds(0.25));
    EXPECT_NEAR(device.now().value(), 0.254, 1e-9);
}

TEST(DeviceIdle, TinyPositiveDurationStillAdvancesOneTick)
{
    // Guards the scheduler against floating-point residue: idling
    // toward a time barely ahead of now() must make progress.
    const sim::ConstantHarvester harvester(Watts(5e-3));
    Device device = chargedDevice(&harvester, Volts(2.0));
    device.idleFor(Seconds(1e-12));
    EXPECT_NEAR(device.now().value(),
                device.options().idle_dt.value(), 1e-9);
}

TEST(DeviceIdle, IdleUntilPastTimeIsANoOp)
{
    const sim::ConstantHarvester harvester(Watts(5e-3));
    Device device = chargedDevice(&harvester, Volts(2.0));
    device.idleFor(Seconds(0.01));
    const Seconds before = device.now();
    device.idleUntil(Seconds(0.005));
    EXPECT_EQ(device.now().value(), before.value());
}

TEST(DeviceIdle, FastAndEulerWaitsAgreeOnElapsedTicks)
{
    const sim::ConstantHarvester harvester(Watts(10e-3));
    Device fast = chargedDevice(&harvester, Volts(1.9));
    DeviceOptions euler_options;
    euler_options.allow_fast_path = false;
    Device euler = chargedDevice(&harvester, Volts(1.9), euler_options);

    const WaitResult wf = fast.idleUntilVoltage(Volts(2.2), Seconds(60.0));
    const WaitResult we =
        euler.idleUntilVoltage(Volts(2.2), Seconds(60.0));
    ASSERT_EQ(wf.status, WaitStatus::Reached);
    ASSERT_EQ(we.status, WaitStatus::Reached);
    // Both backends decide on the same tick grid; the analytic
    // integrator may land within a tick of the Euler oracle.
    const double dt = fast.options().idle_dt.value();
    EXPECT_NEAR(wf.elapsed.value(), we.elapsed.value(), 2.0 * dt);
}

TEST(DeviceLoad, FastAndEulerRunsAgreeOnOutcome)
{
    const auto profile = load::uniform(25.0_mA, 50.0_ms);
    Device fast = chargedDevice(nullptr, Volts(2.4));
    Device euler = chargedDevice(nullptr, Volts(2.4));
    sim::LoadOptions euler_load;
    euler_load.allow_fast_path = false;

    const sim::LoadResult rf = fast.runLoad(profile);
    const sim::LoadResult re = euler.runLoad(profile, euler_load);
    EXPECT_TRUE(rf.completed);
    EXPECT_TRUE(re.completed);
    EXPECT_NEAR(rf.vmin.value(), re.vmin.value(), 5e-3);
    EXPECT_NEAR(rf.vend.value(), re.vend.value(), 5e-3);
}

TEST(DeviceLoad, BrownOutReportedOnBothBackends)
{
    const auto profile = load::uniform(50.0_mA, 100.0_ms);
    Device fast = chargedDevice(nullptr, Volts(1.9));
    Device euler = chargedDevice(nullptr, Volts(1.9));
    sim::LoadOptions euler_load;
    euler_load.allow_fast_path = false;

    const sim::LoadResult rf = fast.runLoad(profile);
    const sim::LoadResult re = euler.runLoad(profile, euler_load);
    EXPECT_FALSE(rf.completed);
    EXPECT_FALSE(re.completed);
    EXPECT_TRUE(rf.power_failed || rf.collapsed);
    EXPECT_TRUE(re.power_failed || re.collapsed);
}

TEST(DeviceLoad, DriverSeesEveryStep)
{
    class CountingDriver : public sim::LoadStepDriver
    {
      public:
        unsigned steps = 0;
        Seconds total{0.0};
        Amps overheadCurrent() override { return Amps(0.0); }
        void onStep(Seconds dt, Volts) override
        {
            ++steps;
            total += dt;
        }
    };

    CountingDriver driver;
    Device device = chargedDevice(nullptr, Volts(2.4));
    sim::LoadOptions options;
    options.dt = Seconds(1e-3);
    options.driver = &driver;
    device.runLoad(load::uniform(10.0_mA, 20.0_ms), options);
    // The Euler loop may overrun the profile by at most one dt.
    EXPECT_GE(driver.steps, 20u);
    EXPECT_LE(driver.steps, 21u);
    EXPECT_NEAR(driver.total.value(), 20e-3, 1.5e-3);
}

TEST(DeviceSegment, StopAboveRestingHaltsTheSegment)
{
    const sim::ConstantHarvester harvester(Watts(10e-3));
    Device device = chargedDevice(&harvester, Volts(1.9));
    sim::SegmentOptions options;
    options.stop_above_resting = Volts(2.0);
    const sim::SegmentResult result = device.system().runSegment(
        Seconds(120.0), Amps(0.0), options);
    EXPECT_TRUE(result.stopped_at_level);
    EXPECT_LT(result.elapsed.value(), 120.0);
    EXPECT_GE(device.restingVoltage().value(), 2.0 - 1e-6);
}

TEST(DeviceSegment, StopWhenEnabledHaltsAtMonitorReArm)
{
    const sim::ConstantHarvester harvester(Watts(10e-3));
    Device device(sim::capybaraConfig());
    device.setHarvester(&harvester);
    device.setBufferVoltage(Volts(2.3)); // Below Vhigh: output off.
    sim::SegmentOptions options;
    options.stop_when_enabled = true;
    const sim::SegmentResult result = device.system().runSegment(
        Seconds(600.0), Amps(0.0), options);
    EXPECT_TRUE(result.stopped_enabled);
    EXPECT_TRUE(device.on());
    EXPECT_LT(result.elapsed.value(), 600.0);
}

TEST(DeviceSettle, ReturnsSettledRestingVoltage)
{
    Device device = chargedDevice(nullptr, Volts(2.4));
    const sim::LoadResult run =
        device.runLoad(load::uniform(25.0_mA, 50.0_ms));
    ASSERT_TRUE(run.completed);
    const Seconds before = device.now();
    const Volts settled = device.settle();
    EXPECT_GT(settled.value(), run.vend.value());
    EXPECT_GT(device.now().value(), before.value());
    EXPECT_LE(device.now().value(), before.value() + 0.41);
}

TEST(DeviceOptionsValidation, NonPositiveIdleDtIsFatal)
{
    DeviceOptions options;
    options.idle_dt = Seconds(0.0);
    EXPECT_THROW(Device(sim::capybaraConfig(), options),
                 log::FatalError);
}

} // namespace
