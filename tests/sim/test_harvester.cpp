/** @file Unit tests for the harvested-power sources. */

#include <gtest/gtest.h>

#include "sim/harvester.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using culpeo::units::Seconds;
using culpeo::units::Watts;
using sim::ConstantHarvester;
using sim::NoHarvester;
using sim::TraceHarvester;

TEST(ConstantHarvester, SamePowerAtAllTimes)
{
    const ConstantHarvester h(Watts(5e-3));
    EXPECT_DOUBLE_EQ(h.powerAt(Seconds(0.0)).value(), 5e-3);
    EXPECT_DOUBLE_EQ(h.powerAt(Seconds(1e6)).value(), 5e-3);
}

TEST(ConstantHarvester, RejectsNegativePower)
{
    EXPECT_THROW(ConstantHarvester{Watts(-1.0)}, culpeo::log::FatalError);
}

TEST(NoHarvester, AlwaysZero)
{
    const NoHarvester h;
    EXPECT_DOUBLE_EQ(h.powerAt(Seconds(42.0)).value(), 0.0);
}

TEST(TraceHarvester, InterpolatesLinearly)
{
    const TraceHarvester h({{Seconds(0.0), Watts(0.0)},
                            {Seconds(10.0), Watts(10e-3)}});
    EXPECT_NEAR(h.powerAt(Seconds(5.0)).value(), 5e-3, 1e-12);
    EXPECT_NEAR(h.powerAt(Seconds(2.5)).value(), 2.5e-3, 1e-12);
}

TEST(TraceHarvester, ClampsOutsideSpan)
{
    const TraceHarvester h({{Seconds(1.0), Watts(1e-3)},
                            {Seconds(2.0), Watts(3e-3)}});
    EXPECT_DOUBLE_EQ(h.powerAt(Seconds(0.0)).value(), 1e-3);
    EXPECT_DOUBLE_EQ(h.powerAt(Seconds(10.0)).value(), 3e-3);
}

TEST(TraceHarvester, SinglePointActsConstant)
{
    const TraceHarvester h({{Seconds(0.0), Watts(7e-3)}});
    EXPECT_DOUBLE_EQ(h.powerAt(Seconds(100.0)).value(), 7e-3);
}

TEST(TraceHarvester, RejectsEmptyAndUnsorted)
{
    EXPECT_THROW(TraceHarvester{{}}, culpeo::log::FatalError);
    EXPECT_THROW(TraceHarvester({{Seconds(2.0), Watts(1.0)},
                                 {Seconds(1.0), Watts(1.0)}}),
                 culpeo::log::FatalError);
}

} // namespace
