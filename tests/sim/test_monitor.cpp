/** @file Unit tests for the hysteretic voltage monitor. */

#include <gtest/gtest.h>

#include "sim/monitor.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using culpeo::units::Volts;
using sim::MonitorConfig;
using sim::VoltageMonitor;

MonitorConfig
standard()
{
    MonitorConfig cfg;
    cfg.vhigh = Volts(2.56);
    cfg.voff = Volts(1.60);
    return cfg;
}

TEST(Monitor, StartsDisabled)
{
    VoltageMonitor monitor(standard());
    EXPECT_FALSE(monitor.enabled());
}

TEST(Monitor, EnablesOnlyAtVhigh)
{
    VoltageMonitor monitor(standard());
    EXPECT_FALSE(monitor.update(Volts(2.0)));
    EXPECT_FALSE(monitor.update(Volts(2.55)));
    EXPECT_TRUE(monitor.update(Volts(2.56)));
}

TEST(Monitor, StaysEnabledThroughMidRange)
{
    VoltageMonitor monitor(standard());
    monitor.update(Volts(2.56));
    EXPECT_TRUE(monitor.update(Volts(2.0)));
    EXPECT_TRUE(monitor.update(Volts(1.60))); // Exactly Voff stays on.
}

TEST(Monitor, DisablesBelowVoff)
{
    VoltageMonitor monitor(standard());
    monitor.update(Volts(2.56));
    EXPECT_FALSE(monitor.update(Volts(1.59)));
    EXPECT_EQ(monitor.powerFailures(), 1u);
}

TEST(Monitor, RequiresFullRechargeAfterFailure)
{
    VoltageMonitor monitor(standard());
    monitor.update(Volts(2.56));
    monitor.update(Volts(1.0)); // Power failure.
    // Mid-range is not enough to re-enable (hysteresis).
    EXPECT_FALSE(monitor.update(Volts(2.0)));
    EXPECT_FALSE(monitor.update(Volts(2.4)));
    EXPECT_TRUE(monitor.update(Volts(2.56)));
}

TEST(Monitor, CountsRepeatedFailures)
{
    VoltageMonitor monitor(standard());
    for (int i = 0; i < 3; ++i) {
        monitor.update(Volts(2.56));
        monitor.update(Volts(1.0));
    }
    EXPECT_EQ(monitor.powerFailures(), 3u);
}

TEST(Monitor, ForceEnabledOverridesState)
{
    VoltageMonitor monitor(standard());
    monitor.forceEnabled(true);
    EXPECT_TRUE(monitor.enabled());
    // A forced-on monitor still trips below Voff.
    EXPECT_FALSE(monitor.update(Volts(1.0)));
    EXPECT_EQ(monitor.powerFailures(), 1u);
}

TEST(Monitor, ConfigValidation)
{
    MonitorConfig bad = standard();
    bad.vhigh = Volts(1.0); // Below Voff.
    EXPECT_THROW(VoltageMonitor{bad}, culpeo::log::FatalError);
    bad = standard();
    bad.voff = Volts(0.0);
    EXPECT_THROW(VoltageMonitor{bad}, culpeo::log::FatalError);
}

} // namespace
