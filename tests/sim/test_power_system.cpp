/** @file Unit tests for the assembled power-system simulator. */

#include <gtest/gtest.h>

#include "sim/power_system.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using sim::ConstantHarvester;
using sim::PowerSystem;
using sim::PowerSystemConfig;
using sim::StepResult;
using sim::capybaraConfig;

TEST(CapybaraConfig, MatchesPaperThresholds)
{
    const PowerSystemConfig cfg = capybaraConfig();
    EXPECT_DOUBLE_EQ(cfg.monitor.voff.value(), 1.60);
    EXPECT_DOUBLE_EQ(cfg.monitor.vhigh.value(), 2.56);
    EXPECT_DOUBLE_EQ(cfg.output.vout.value(), 2.55);
    EXPECT_DOUBLE_EQ(cfg.capacitor.capacitance.value(), 45e-3);
}

TEST(PowerSystem, OperatingRange)
{
    PowerSystem system(capybaraConfig());
    EXPECT_NEAR(system.operatingRange().value(), 0.96, 1e-12);
}

TEST(PowerSystem, NoLoadWhileDisabledOnlyLeaks)
{
    PowerSystem system(capybaraConfig());
    system.setBufferVoltage(Volts(2.0)); // Below Vhigh: stays disabled.
    const StepResult result = system.step(Seconds(1e-3), Amps(0.05));
    EXPECT_FALSE(result.delivering);
    EXPECT_EQ(result.input_current.value(), 0.0);
    EXPECT_NEAR(result.open_circuit.value(), 2.0, 1e-5);
}

TEST(PowerSystem, DeliversWhenForcedOn)
{
    PowerSystem system(capybaraConfig());
    system.setBufferVoltage(Volts(2.4));
    system.forceOutputEnabled(true);
    const StepResult result = system.step(Seconds(1e-3), Amps(0.01));
    EXPECT_TRUE(result.delivering);
    EXPECT_GT(result.input_current.value(), 0.01);
    EXPECT_LT(result.terminal.value(), 2.4);
}

TEST(PowerSystem, SustainedLoadLowersVoltage)
{
    PowerSystem system(capybaraConfig());
    system.setBufferVoltage(Volts(2.5));
    system.forceOutputEnabled(true);
    for (int i = 0; i < 1000; ++i)
        system.step(Seconds(1e-3), Amps(0.02));
    EXPECT_LT(system.capacitor().openCircuitVoltage().value(), 2.45);
}

TEST(PowerSystem, PowerFailureOnDeepDrop)
{
    PowerSystem system(capybaraConfig());
    system.setBufferVoltage(Volts(1.75));
    system.forceOutputEnabled(true);
    // 50 mA through ohm-class ESR drops the terminal far below Voff.
    bool failed = false;
    for (int i = 0; i < 100 && !failed; ++i)
        failed = system.step(Seconds(1e-4), Amps(0.05)).power_failed;
    EXPECT_TRUE(failed);
    EXPECT_FALSE(system.monitor().enabled());
    EXPECT_EQ(system.monitor().powerFailures(), 1u);
}

TEST(PowerSystem, PowerFailureDespiteStoredEnergy)
{
    // The headline effect (Figure 4): the device dies with ample energy.
    PowerSystem system(capybaraConfig());
    system.setBufferVoltage(Volts(1.75));
    system.forceOutputEnabled(true);
    const Joules before = system.capacitor().storedEnergy();
    for (int i = 0; i < 100; ++i)
        system.step(Seconds(1e-4), Amps(0.05));
    const Joules after = system.capacitor().storedEnergy();
    EXPECT_FALSE(system.monitor().enabled());
    // Less than 2% of the stored energy was actually consumed.
    EXPECT_GT(after.value(), before.value() * 0.98);
}

TEST(PowerSystem, HarvesterRecharges)
{
    PowerSystem system(capybaraConfig());
    ConstantHarvester harvester(Watts(10e-3));
    system.setHarvester(&harvester);
    system.setBufferVoltage(Volts(1.7));
    const double v0 = system.restingVoltage().value();
    for (int i = 0; i < 1000; ++i)
        system.step(Seconds(10e-3), Amps(0.0));
    EXPECT_GT(system.restingVoltage().value(), v0 + 0.05);
}

TEST(PowerSystem, RechargeStopsAtVhigh)
{
    PowerSystem system(capybaraConfig());
    ConstantHarvester harvester(Watts(50e-3));
    system.setHarvester(&harvester);
    system.setBufferVoltage(Volts(2.0));
    system.recharge(Seconds(10e-3), Seconds(1e4));
    EXPECT_NEAR(system.capacitor().openCircuitVoltage().value(), 2.56,
                0.01);
}

TEST(PowerSystem, MonitorReenablesAfterFullRecharge)
{
    PowerSystem system(capybaraConfig());
    ConstantHarvester harvester(Watts(20e-3));
    system.setHarvester(&harvester);
    system.setBufferVoltage(Volts(1.8));
    system.forceOutputEnabled(true);
    // Brown out.
    for (int i = 0; i < 200; ++i)
        system.step(Seconds(1e-4), Amps(0.05));
    ASSERT_FALSE(system.monitor().enabled());
    // Recharge; the monitor must re-enable only at Vhigh.
    bool reenabled = false;
    for (int i = 0; i < 200000 && !reenabled; ++i) {
        system.step(Seconds(10e-3), Amps(0.0));
        reenabled = system.monitor().enabled();
    }
    EXPECT_TRUE(reenabled);
    EXPECT_GE(system.restingVoltage().value(), 2.5);
}

TEST(PowerSystem, TraceCaptureRecordsSteps)
{
    PowerSystem system(capybaraConfig());
    system.setBufferVoltage(Volts(2.4));
    system.forceOutputEnabled(true);
    system.captureTrace(true);
    for (int i = 0; i < 10; ++i)
        system.step(Seconds(1e-3), Amps(0.01));
    EXPECT_EQ(system.trace().size(), 10u);
    system.clearTrace();
    EXPECT_TRUE(system.trace().empty());
}

TEST(PowerSystem, TimeAdvances)
{
    PowerSystem system(capybaraConfig());
    system.setBufferVoltage(Volts(2.0));
    for (int i = 0; i < 5; ++i)
        system.step(Seconds(2e-3), Amps(0.0));
    EXPECT_NEAR(system.now().value(), 10e-3, 1e-12);
}

TEST(PowerSystem, InputValidation)
{
    PowerSystem system(capybaraConfig());
    EXPECT_THROW(system.step(Seconds(0.0), Amps(0.0)), culpeo::log::FatalError);
    EXPECT_THROW(system.step(Seconds(1e-3), Amps(-1.0)), culpeo::log::FatalError);
    EXPECT_THROW(system.setBufferVoltage(Volts(-1.0)), culpeo::log::FatalError);
}

TEST(PowerSystemReconfigure, GrowingCapacitanceConservesCharge)
{
    // Attaching empty banks spreads the stored charge over the larger
    // capacitance: Q = C*V is conserved, so V scales by C_old/C_new.
    PowerSystem system(capybaraConfig());
    system.setBufferVoltage(Volts(2.4));
    sim::CapacitorConfig next = system.config().capacitor;
    next.capacitance = next.capacitance * 2.0;
    system.reconfigureCapacitor(next);
    EXPECT_NEAR(system.capacitor().openCircuitVoltage().value(), 1.2,
                1e-9);
    EXPECT_DOUBLE_EQ(system.config().capacitor.capacitance.value(),
                     next.capacitance.value());
}

TEST(PowerSystemReconfigure, ShrinkingCapacitanceKeepsVoltage)
{
    // Detached banks take their own charge with them; the remaining
    // banks keep their per-bank voltage.
    PowerSystem system(capybaraConfig());
    system.setBufferVoltage(Volts(2.2));
    sim::CapacitorConfig next = system.config().capacitor;
    next.capacitance = next.capacitance * (1.0 / 3.0);
    system.reconfigureCapacitor(next);
    EXPECT_NEAR(system.capacitor().openCircuitVoltage().value(), 2.2,
                1e-9);
}

TEST(PowerSystemReconfigure, RoundTripRestoresVoltageScale)
{
    PowerSystem system(capybaraConfig());
    system.setBufferVoltage(Volts(2.0));
    const sim::CapacitorConfig original = system.config().capacitor;
    sim::CapacitorConfig doubled = original;
    doubled.capacitance = original.capacitance * 2.0;
    system.reconfigureCapacitor(doubled); // 2.0 V -> 1.0 V.
    system.reconfigureCapacitor(original); // Shrink: keeps 1.0 V.
    EXPECT_NEAR(system.capacitor().openCircuitVoltage().value(), 1.0,
                1e-9);
}

TEST(PowerSystemReconfigure, RejectsNonPositiveCapacitance)
{
    PowerSystem system(capybaraConfig());
    sim::CapacitorConfig next = system.config().capacitor;
    next.capacitance = Farads(0.0);
    EXPECT_THROW(system.reconfigureCapacitor(next),
                 culpeo::log::FatalError);
}

} // namespace
