/**
 * @file
 * Equivalence suite for the analytic segment-stepping fast path: every
 * observable runSegment() produces on the closed-form path must match
 * the Euler reference within tight tolerances, across pulse widths,
 * aging states, charging currents, and brown-out (Voff-crossing)
 * timing. The Euler loop is the semantic definition; the fast path is
 * only allowed to be faster.
 */

#include <gtest/gtest.h>

#include "sim/capacitor.hpp"
#include "sim/harvester.hpp"
#include "sim/instrumentation.hpp"
#include "sim/power_system.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;

/**
 * Voltage agreement bound between the two paths (see DESIGN.md §10):
 * the macro-step controller's default current tolerance bounds the
 * residual at a few mV in the worst (heavily aged, high-ESR) corner —
 * well under the 20 mV dispatch guard band everything is admitted with.
 */
constexpr double kVoltTol = 5e-3;

/**
 * Time agreement bound: the Euler reference loop deliberately overruns
 * the requested duration by up to one step (matching the original
 * runTask loop), while the analytic path lands exactly; brown-out
 * stops resolve inside a reference step on both paths.
 */
constexpr double kTimeTol = 50e-6 + 1e-12;

struct SegmentCase
{
    double vstart;
    double i_load;
    double duration;
};

sim::SegmentResult
runOnce(const sim::PowerSystemConfig &cfg, const SegmentCase &c,
        bool analytic, sim::Harvester *harvester = nullptr)
{
    sim::PowerSystem system(cfg);
    if (harvester != nullptr)
        system.setHarvester(harvester);
    system.setBufferVoltage(Volts(c.vstart));
    system.forceOutputEnabled(true);
    sim::SegmentOptions options;
    options.allow_analytic = analytic;
    return system.runSegment(Seconds(c.duration), Amps(c.i_load),
                             options);
}

void
expectEquivalent(const sim::SegmentResult &euler,
                 const sim::SegmentResult &fast, double volt_tol,
                 double time_tol)
{
    EXPECT_FALSE(euler.used_analytic);
    EXPECT_TRUE(fast.used_analytic);
    EXPECT_EQ(euler.power_failed, fast.power_failed);
    EXPECT_EQ(euler.collapsed, fast.collapsed);
    EXPECT_NEAR(euler.vmin.value(), fast.vmin.value(), volt_tol);
    EXPECT_NEAR(euler.vend.value(), fast.vend.value(), volt_tol);
    EXPECT_NEAR(euler.elapsed.value(), fast.elapsed.value(), time_tol);
}

TEST(SegmentStepping, MatchesEulerAcrossPulseWidths)
{
    const auto cfg = sim::capybaraConfig();
    const SegmentCase cases[] = {
        {2.5, 25e-3, 0.5e-3}, // Shorter than one Euler step budget.
        {2.5, 25e-3, 2e-3},
        {2.5, 25e-3, 10e-3},
        {2.5, 10e-3, 50e-3},
        {2.5, 5e-3, 200e-3}, // Long tail: many macro steps.
    };
    for (const auto &c : cases) {
        SCOPED_TRACE(testing::Message()
                     << c.i_load * 1e3 << " mA for " << c.duration * 1e3
                     << " ms from " << c.vstart << " V");
        const auto euler = runOnce(cfg, c, false);
        const auto fast = runOnce(cfg, c, true);
        expectEquivalent(euler, fast, kVoltTol, kTimeTol);
        // The point of the fast path: orders of magnitude fewer model
        // evaluations than the Euler loop's step count.
        EXPECT_LT(fast.macro_steps + fast.reference_steps,
                  euler.reference_steps / 4);
    }
}

TEST(SegmentStepping, MatchesEulerAcrossAgingStates)
{
    const SegmentCase c{2.5, 25e-3, 10e-3};
    for (const double fraction : {1.0, 0.85, 0.7}) {
        for (const double esr_mult : {1.0, 2.0, 3.5}) {
            SCOPED_TRACE(testing::Message()
                         << "capacitance_fraction=" << fraction
                         << " esr_multiplier=" << esr_mult);
            auto cfg = sim::capybaraConfig();
            cfg.capacitor.capacitance_fraction = fraction;
            cfg.capacitor.esr_multiplier = esr_mult;
            const auto euler = runOnce(cfg, c, false);
            const auto fast = runOnce(cfg, c, true);
            expectEquivalent(euler, fast, kVoltTol, kTimeTol);
        }
    }
}

TEST(SegmentStepping, MatchesEulerWhileCharging)
{
    const auto cfg = sim::capybaraConfig();
    for (const double power_mw : {2.0, 15.0, 40.0}) {
        SCOPED_TRACE(testing::Message() << power_mw << " mW harvest");
        sim::ConstantHarvester euler_harvester(Watts(power_mw * 1e-3));
        sim::ConstantHarvester fast_harvester(Watts(power_mw * 1e-3));
        const SegmentCase c{2.1, 8e-3, 50e-3};
        const auto euler = runOnce(cfg, c, false, &euler_harvester);
        const auto fast = runOnce(cfg, c, true, &fast_harvester);
        expectEquivalent(euler, fast, kVoltTol, kTimeTol);
    }
}

TEST(SegmentStepping, VoffCrossingTimesMatchEuler)
{
    const auto cfg = sim::capybaraConfig();
    // Heavy loads from voltages low enough that the monitor trips
    // mid-segment: the fast path must report the same brown-out, at
    // the same simulated time to within one fallback step, because the
    // actual monitor transition always happens inside a reference step.
    const SegmentCase cases[] = {
        {1.9, 50e-3, 50e-3},
        {2.0, 40e-3, 100e-3},
        {1.75, 30e-3, 50e-3},
    };
    sim::SegmentOptions probe;
    for (const auto &c : cases) {
        SCOPED_TRACE(testing::Message()
                     << c.i_load * 1e3 << " mA from " << c.vstart
                     << " V");
        const auto euler = runOnce(cfg, c, false);
        const auto fast = runOnce(cfg, c, true);
        ASSERT_TRUE(euler.power_failed)
            << "case does not brown out; pick a heavier load";
        EXPECT_TRUE(fast.power_failed);
        // A crossing-time deviation is the paths' voltage deviation
        // divided by the local discharge slope (at least i_load/C at
        // the buffer), plus the reference step both paths resolve the
        // monitor transition inside.
        const double slope =
            c.i_load / cfg.capacitor.capacitance.value();
        const double crossing_tol =
            kVoltTol / slope + probe.fallback_dt.value();
        EXPECT_NEAR(euler.elapsed.value(), fast.elapsed.value(),
                    crossing_tol);
        EXPECT_NEAR(euler.vmin.value(), fast.vmin.value(), kVoltTol);
    }
}

TEST(SegmentStepping, ForcedEulerPathReportsItself)
{
    const auto cfg = sim::capybaraConfig();
    const SegmentCase c{2.5, 25e-3, 5e-3};
    const auto euler = runOnce(cfg, c, false);
    EXPECT_FALSE(euler.used_analytic);
    EXPECT_EQ(euler.macro_steps, 0u);
    EXPECT_GT(euler.reference_steps, 0u);
}

/** Observers force the Euler path: they must see every step. */
TEST(SegmentStepping, ObserverDisablesFastPath)
{
    struct CountingObserver : sim::StepObserver
    {
        unsigned steps = 0;
        void onStep(const sim::StepResult &) override { ++steps; }
    };

    sim::PowerSystem system(sim::capybaraConfig());
    CountingObserver observer;
    system.setObserver(&observer);
    EXPECT_FALSE(system.analyticEligible());
    system.setBufferVoltage(Volts(2.5));
    system.forceOutputEnabled(true);
    const auto result =
        system.runSegment(Seconds(5e-3), Amps(25e-3));
    EXPECT_FALSE(result.used_analytic);
    EXPECT_EQ(observer.steps, result.reference_steps);
    EXPECT_GT(observer.steps, 0u);
}

/** A trace-driven harvester has no constant power: Euler fallback. */
TEST(SegmentStepping, NonConstantHarvesterDisablesFastPath)
{
    sim::PowerSystem system(sim::capybaraConfig());
    std::vector<sim::TraceHarvester::Point> points{
        {Seconds(0.0), Watts(10e-3)},
        {Seconds(1.0), Watts(0.0)},
    };
    sim::TraceHarvester harvester(points);
    system.setHarvester(&harvester);
    EXPECT_FALSE(system.analyticEligible());

    sim::ConstantHarvester constant(Watts(10e-3));
    system.setHarvester(&constant);
    EXPECT_TRUE(system.analyticEligible());
}

/**
 * Capacitor-level equivalence: one analytic advance over an interval
 * equals many fine Euler steps over the same interval, for discharge,
 * rest, and charge currents.
 */
TEST(SegmentStepping, AdvanceAnalyticMatchesFineEuler)
{
    for (const double i_out : {20e-3, 5e-3, 0.0, -5e-3, -20e-3}) {
        SCOPED_TRACE(testing::Message() << "i_out=" << i_out);
        sim::Capacitor euler(sim::capybaraConfig().capacitor);
        euler.setOpenCircuitVoltage(Volts(2.3));
        sim::Capacitor fast = euler;

        const double total = 20e-3;
        const int fine_steps = 4000;
        for (int i = 0; i < fine_steps; ++i)
            euler.step(Seconds(total / fine_steps), Amps(i_out));
        fast.advanceAnalytic(Seconds(total), Amps(i_out));

        EXPECT_NEAR(euler.openCircuitVoltage().value(),
                    fast.openCircuitVoltage().value(), 1e-3);
        EXPECT_NEAR(euler.bulkVoltage().value(),
                    fast.bulkVoltage().value(), 1e-3);
        EXPECT_NEAR(euler.surfaceVoltage().value(),
                    fast.surfaceVoltage().value(), 1e-3);
    }
}

/** Zero- and negative-duration segments are graceful no-ops. */
TEST(SegmentStepping, DegenerateDurations)
{
    sim::PowerSystem system(sim::capybaraConfig());
    system.setBufferVoltage(Volts(2.5));
    system.forceOutputEnabled(true);
    const auto zero = system.runSegment(Seconds(0.0), Amps(10e-3));
    EXPECT_EQ(zero.elapsed.value(), 0.0);
    EXPECT_GT(zero.vend.value(), 0.0);
    EXPECT_FALSE(zero.power_failed);
}

} // namespace
