/** @file Unit tests for the voltage/current trace container. */

#include <gtest/gtest.h>

#include "sim/trace.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using culpeo::units::Amps;
using culpeo::units::Seconds;
using culpeo::units::Volts;
using sim::TraceSample;
using sim::VoltageTrace;

VoltageTrace
ramp()
{
    VoltageTrace trace;
    for (int i = 0; i <= 10; ++i) {
        // Terminal voltage dips in the middle of the trace.
        const double t = i * 0.1;
        const double v = 2.5 - 0.1 * (5 - std::abs(5 - i));
        trace.add({Seconds(t), Volts(v), Volts(v + 0.05), Amps(0.01),
                   true});
    }
    return trace;
}

TEST(Trace, EmptyQueriesAreFatal)
{
    VoltageTrace trace;
    EXPECT_TRUE(trace.empty());
    EXPECT_THROW(trace.minTerminal(), culpeo::log::FatalError);
    EXPECT_THROW(trace.front(), culpeo::log::FatalError);
    EXPECT_THROW(trace.back(), culpeo::log::FatalError);
    EXPECT_THROW(trace.terminalAt(Seconds(0.0)), culpeo::log::FatalError);
}

TEST(Trace, AppendsAndIndexes)
{
    const VoltageTrace trace = ramp();
    EXPECT_EQ(trace.size(), 11u);
    EXPECT_DOUBLE_EQ(trace.front().time.value(), 0.0);
    EXPECT_DOUBLE_EQ(trace.back().time.value(), 1.0);
    EXPECT_DOUBLE_EQ(trace[0].terminal.value(), 2.5);
}

TEST(Trace, OutOfOrderAppendIsPanic)
{
    VoltageTrace trace;
    trace.add({Seconds(1.0), Volts(2.0), Volts(2.0), Amps(0.0), false});
    EXPECT_THROW(trace.add({Seconds(0.5), Volts(2.0), Volts(2.0),
                            Amps(0.0), false}),
                 culpeo::log::PanicError);
}

TEST(Trace, MinTerminalFindsGlobalMinimum)
{
    const VoltageTrace trace = ramp();
    EXPECT_DOUBLE_EQ(trace.minTerminal().value(), 2.0);
}

TEST(Trace, WindowedMinAndMax)
{
    const VoltageTrace trace = ramp();
    // Window covering only the descending start of the dip.
    EXPECT_NEAR(
        trace.minTerminalBetween(Seconds(0.0), Seconds(0.21)).value(),
        2.3, 1e-12);
    EXPECT_NEAR(
        trace.maxTerminalBetween(Seconds(0.0), Seconds(0.21)).value(),
        2.5, 1e-12);
    // Empty window is fatal.
    EXPECT_THROW(trace.minTerminalBetween(Seconds(5.0), Seconds(6.0)),
                 culpeo::log::FatalError);
}

TEST(Trace, TerminalAtInterpolates)
{
    VoltageTrace trace;
    trace.add({Seconds(0.0), Volts(2.0), Volts(2.0), Amps(0.0), true});
    trace.add({Seconds(1.0), Volts(3.0), Volts(3.0), Amps(0.0), true});
    EXPECT_NEAR(trace.terminalAt(Seconds(0.5)).value(), 2.5, 1e-12);
    EXPECT_NEAR(trace.terminalAt(Seconds(0.25)).value(), 2.25, 1e-12);
}

TEST(Trace, TerminalAtClampsOutsideSpan)
{
    VoltageTrace trace;
    trace.add({Seconds(1.0), Volts(2.0), Volts(2.0), Amps(0.0), true});
    trace.add({Seconds(2.0), Volts(3.0), Volts(3.0), Amps(0.0), true});
    EXPECT_DOUBLE_EQ(trace.terminalAt(Seconds(0.0)).value(), 2.0);
    EXPECT_DOUBLE_EQ(trace.terminalAt(Seconds(5.0)).value(), 3.0);
}

TEST(Trace, DurationAndClear)
{
    VoltageTrace trace = ramp();
    EXPECT_NEAR(trace.duration().value(), 1.0, 1e-12);
    trace.clear();
    EXPECT_TRUE(trace.empty());
    EXPECT_DOUBLE_EQ(trace.duration().value(), 0.0);
}

} // namespace
