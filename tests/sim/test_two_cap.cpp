/** @file Unit tests for the decoupling-capacitor two-branch network. */

#include <gtest/gtest.h>

#include "sim/two_cap.hpp"
#include "util/logging.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using sim::CapBranch;
using sim::TwoCapNetwork;

TwoCapNetwork
typicalNetwork(double decoupling_farads = 1e-3)
{
    CapBranch super;
    super.capacitance = Farads(33e-3);
    super.esr = Ohms(8.0);
    CapBranch decouple;
    decouple.capacitance = Farads(decoupling_farads);
    decouple.esr = Ohms(0.01);
    TwoCapNetwork net(super, decouple);
    net.setVoltage(Volts(2.5));
    return net;
}

TEST(TwoCap, NodeVoltageAtNoLoadEqualsBranchVoltage)
{
    TwoCapNetwork net = typicalNetwork();
    EXPECT_NEAR(net.nodeVoltage(Amps(0.0)).value(), 2.5, 1e-12);
}

TEST(TwoCap, TransientLoadServedByDecouplingBranch)
{
    // For a *brief* spike the low-ESR decoupling branch holds the node
    // voltage up: drop is roughly I * (R1 || R2) ~ I * R2.
    TwoCapNetwork net = typicalNetwork();
    const double vn = net.nodeVoltage(Amps(0.05)).value();
    EXPECT_GT(vn, 2.5 - 0.05 * 0.02); // Far better than 0.05 * 8.
}

TEST(TwoCap, SustainedLoadSagsToSupercapEsrDrop)
{
    // After the decoupling bank depletes, the supercap's ESR drop
    // reappears at the node (the Section II-D result).
    TwoCapNetwork net = typicalNetwork(1e-3);
    const double dt = 1e-5;
    double elapsed = 0.0;
    while (elapsed < 0.1) {
        net.step(units::Seconds(dt), Amps(0.05));
        elapsed += dt;
    }
    const double vn = net.nodeVoltage(Amps(0.05)).value();
    const double sag = net.main().open_circuit.value() - vn;
    // Most of I * R_super (0.4 V) shows at the node by 100 ms.
    EXPECT_GT(sag, 0.2);
}

TEST(TwoCap, LargerDecouplingDelaysButDoesNotPreventSag)
{
    auto sag_after = [](double c_decouple) {
        TwoCapNetwork net = typicalNetwork(c_decouple);
        double elapsed = 0.0;
        while (elapsed < 0.1) {
            net.step(units::Seconds(1e-5), Amps(0.05));
            elapsed += 1e-5;
        }
        return net.main().open_circuit.value() -
               net.nodeVoltage(Amps(0.05)).value();
    };
    const double small = sag_after(400e-6);
    const double large = sag_after(6.4e-3);
    EXPECT_GT(small, large);
    // Even 6.4 mF of decoupling leaves a substantial (>100 mV) drop.
    EXPECT_GT(large, 0.1);
}

TEST(TwoCap, ChargeIsConserved)
{
    TwoCapNetwork net = typicalNetwork();
    const double q0 = net.main().open_circuit.value() * 33e-3 +
                      net.decoupling().open_circuit.value() * 1e-3;
    double delivered = 0.0;
    for (int i = 0; i < 1000; ++i) {
        net.step(units::Seconds(1e-5), Amps(0.05));
        delivered += 0.05 * 1e-5;
    }
    const double q1 = net.main().open_circuit.value() * 33e-3 +
                      net.decoupling().open_circuit.value() * 1e-3;
    EXPECT_NEAR(q0 - q1, delivered, delivered * 0.01);
}

TEST(TwoCap, Validation)
{
    CapBranch bad;
    bad.capacitance = Farads(0.0);
    bad.esr = Ohms(1.0);
    CapBranch ok;
    ok.capacitance = Farads(1e-3);
    ok.esr = Ohms(1.0);
    EXPECT_THROW(TwoCapNetwork(bad, ok), culpeo::log::FatalError);
    TwoCapNetwork net(ok, ok);
    EXPECT_THROW(net.step(units::Seconds(0.0), Amps(0.0)),
                 culpeo::log::FatalError);
}

} // namespace
