/** @file Unit tests for the telemetry metric Registry. */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "telemetry/metrics.hpp"
#include "util/logging.hpp"
#include "util/parallel.hpp"

namespace {

using namespace culpeo;
using telemetry::Gauge;
using telemetry::GaugeMode;
using telemetry::Histogram;
using telemetry::Registry;

TEST(Registry, CounterFindOrCreateIsStable)
{
    Registry reg;
    telemetry::Counter &a = reg.counter("hits");
    telemetry::Counter &b = reg.counter("hits");
    EXPECT_EQ(&a, &b);
    a.add();
    b.add(4);
    EXPECT_EQ(reg.findCounter("hits")->value(), 5u);
    EXPECT_EQ(reg.findCounter("absent"), nullptr);
}

TEST(Registry, GaugeModesFoldAsDocumented)
{
    Registry reg;
    Gauge &last = reg.gauge("last", GaugeMode::Last);
    Gauge &sum = reg.gauge("sum", GaugeMode::Sum);
    Gauge &mn = reg.gauge("min", GaugeMode::Min);
    Gauge &mx = reg.gauge("max", GaugeMode::Max);
    EXPECT_FALSE(mn.touched());
    for (double v : {3.0, -1.0, 2.0}) {
        last.record(v);
        sum.record(v);
        mn.record(v);
        mx.record(v);
    }
    EXPECT_DOUBLE_EQ(last.value(), 2.0);
    EXPECT_DOUBLE_EQ(sum.value(), 4.0);
    EXPECT_DOUBLE_EQ(mn.value(), -1.0);
    EXPECT_DOUBLE_EQ(mx.value(), 3.0);
    EXPECT_TRUE(mn.touched());
}

TEST(Registry, HistogramBucketsAndOutliers)
{
    Registry reg;
    Histogram &h = reg.histogram("h", 0.0, 10.0, 5);
    for (double v : {-1.0, 0.0, 1.9, 2.0, 9.9, 10.0, 42.0})
        h.record(v);
    // Slots: [underflow, 0-2, 2-4, 4-6, 6-8, 8-10, overflow].
    const std::vector<std::uint64_t> counts = h.bucketCounts();
    ASSERT_EQ(counts.size(), 7u);
    EXPECT_EQ(counts[0], 1u); // -1.0
    EXPECT_EQ(counts[1], 2u); // 0.0, 1.9
    EXPECT_EQ(counts[2], 1u); // 2.0
    EXPECT_EQ(counts[5], 1u); // 9.9
    EXPECT_EQ(counts[6], 2u); // 10.0 (hi is exclusive), 42.0
    EXPECT_EQ(h.count(), 7u);
    EXPECT_DOUBLE_EQ(h.min(), -1.0);
    EXPECT_DOUBLE_EQ(h.max(), 42.0);
}

TEST(Registry, CrossTypeNameCollisionIsFatal)
{
    Registry reg;
    reg.counter("metric");
    EXPECT_THROW(reg.gauge("metric"), log::FatalError);
    EXPECT_THROW(reg.histogram("metric", 0.0, 1.0, 4), log::FatalError);
    reg.gauge("g", GaugeMode::Min);
    EXPECT_THROW(reg.gauge("g", GaugeMode::Max), log::FatalError);
}

/**
 * The thread-safety contract: instrument sites cache references and
 * update from the sweep executor's workers concurrently. Counter and
 * histogram totals must be exact; Min/Max gauges must land on the true
 * extremes.
 */
TEST(Registry, ConcurrentUpdatesFromThreadPoolAreExact)
{
    Registry reg;
    telemetry::Counter &hits = reg.counter("hits");
    Gauge &mn = reg.gauge("mn", GaugeMode::Min);
    Gauge &mx = reg.gauge("mx", GaugeMode::Max);
    Histogram &h = reg.histogram("h", 0.0, 64.0, 8);

    constexpr int kWorkers = 64;
    constexpr int kPerWorker = 2000;
    std::vector<int> workers(kWorkers);
    std::iota(workers.begin(), workers.end(), 0);
    util::parallelMap(workers, [&](int w) {
        for (int i = 0; i < kPerWorker; ++i) {
            hits.add();
            mn.record(double(w));
            mx.record(double(w));
            h.record(double(w));
        }
        return 0;
    });

    EXPECT_EQ(hits.value(), std::uint64_t(kWorkers) * kPerWorker);
    EXPECT_DOUBLE_EQ(mn.value(), 0.0);
    EXPECT_DOUBLE_EQ(mx.value(), double(kWorkers - 1));
    EXPECT_EQ(h.count(), std::uint64_t(kWorkers) * kPerWorker);
    const std::vector<std::uint64_t> counts = h.bucketCounts();
    const std::uint64_t total =
        std::accumulate(counts.begin(), counts.end(), std::uint64_t(0));
    EXPECT_EQ(total, std::uint64_t(kWorkers) * kPerWorker);
}

TEST(Registry, MergeCombinesPerType)
{
    Registry a;
    a.counter("c").add(2);
    a.gauge("min", GaugeMode::Min).record(1.5);
    a.gauge("sum", GaugeMode::Sum).record(1.0);
    a.histogram("h", 0.0, 4.0, 4).record(1.0);

    Registry b;
    b.counter("c").add(3);
    b.counter("only_b").add(7);
    b.gauge("min", GaugeMode::Min).record(0.5);
    b.gauge("sum", GaugeMode::Sum).record(2.0);
    b.histogram("h", 0.0, 4.0, 4).record(3.0);

    a.merge(b);
    EXPECT_EQ(a.findCounter("c")->value(), 5u);
    EXPECT_EQ(a.findCounter("only_b")->value(), 7u);
    EXPECT_DOUBLE_EQ(a.findGauge("min")->value(), 0.5);
    EXPECT_DOUBLE_EQ(a.findGauge("sum")->value(), 3.0);
    EXPECT_EQ(a.findHistogram("h")->count(), 2u);

    // Untouched gauges must not poison the destination with identity
    // values (e.g. a Min gauge that never recorded).
    Registry c;
    c.gauge("min", GaugeMode::Min);
    a.merge(c);
    EXPECT_DOUBLE_EQ(a.findGauge("min")->value(), 0.5);
}

TEST(Registry, SnapshotsAreNameSorted)
{
    Registry reg;
    reg.counter("zeta").add(1);
    reg.counter("alpha").add(2);
    const auto counters = reg.counters();
    ASSERT_EQ(counters.size(), 2u);
    EXPECT_EQ(counters[0].first, "alpha");
    EXPECT_EQ(counters[1].first, "zeta");
}

} // namespace
