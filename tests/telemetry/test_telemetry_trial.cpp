/**
 * @file
 * End-to-end telemetry tests through the scheduler engine: a seeded
 * Figure 12-style trial must yield a coherent, reproducible JSONL
 * trace, the Euler and analytic wait backends must agree on summary
 * telemetry, and sweep merges must be deterministic.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "apps/apps.hpp"
#include "sched/policy.hpp"
#include "sched/trial.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace culpeo;
using namespace culpeo::units;
using namespace culpeo::units::literals;

/** One seeded five-minute Periodic Sensing trial into @p sink. */
sched::TrialResult
fig12Trial(sched::Policy &policy, telemetry::Telemetry *sink,
           bool force_euler = false)
{
    const sched::AppSpec app = apps::periodicSensing();
    return TrialBuilder()
        .app(app)
        .policy(policy)
        .duration(300.0_s)
        .seed(7)
        .forceEuler(force_euler)
        .telemetry(sink)
        .run();
}

unsigned
countKind(const telemetry::TraceLog &trace, telemetry::EventKind kind)
{
    unsigned n = 0;
    for (const telemetry::TraceEvent &e : trace.events())
        n += e.kind == kind ? 1 : 0;
    return n;
}

TEST(TelemetryTrial, SeededTrialProducesCoherentTrace)
{
    if (!telemetry::kEnabled)
        GTEST_SKIP() << "built with CULPEO_TELEMETRY=OFF";

    // CatNap browns out on Periodic Sensing (Fig. 12), so this one
    // trial exercises every event kind the device layer emits.
    sched::CatnapPolicy catnap;
    catnap.initialize(apps::periodicSensing());
    telemetry::TelemetryConfig cfg;
    cfg.trace_capacity = 1u << 16;
    telemetry::Telemetry sink(cfg);
    const sched::TrialResult result = fig12Trial(catnap, &sink);

    ASSERT_TRUE(result.telemetry.has_value());
    const telemetry::TelemetrySummary &sum = *result.telemetry;
    EXPECT_GT(sum.loads, 0u);
    EXPECT_GT(sum.tasks_started, 0u);
    EXPECT_GE(sum.tasks_started, sum.tasks_completed);
    EXPECT_EQ(sum.brownouts, result.power_failures);
    EXPECT_GT(sum.brownouts, 0u);
    EXPECT_GT(sum.recharges, 0u);
    EXPECT_NEAR(sum.sim_seconds, 300.0, 1.0);
    EXPECT_GT(sum.rechargeFraction(), 0.0);
    EXPECT_LT(sum.rechargeFraction(), 1.0);
    // CatNap's failures mean some load dipped below Voff.
    EXPECT_LT(sum.min_margin_v, 0.0);

    const auto events = sink.trace().events();
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(sink.trace().dropped(), 0u);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].time_s, events[i - 1].time_s) << "at " << i;
    EXPECT_GT(countKind(sink.trace(), telemetry::EventKind::TaskStart),
              0u);
    EXPECT_GT(countKind(sink.trace(), telemetry::EventKind::TaskEnd),
              0u);
    EXPECT_GT(countKind(sink.trace(), telemetry::EventKind::BrownOut),
              0u);
    EXPECT_GT(
        countKind(sink.trace(), telemetry::EventKind::RechargeEnter),
        0u);
    EXPECT_GT(
        countKind(sink.trace(), telemetry::EventKind::RechargeExit), 0u);
    EXPECT_GT(
        countKind(sink.trace(), telemetry::EventKind::VsafeUpdate), 0u);

    // The per-task Vmin histogram for the event chain's task exists.
    const telemetry::Histogram *vmin = sink.registry().findHistogram(
        telemetry::names::taskVmin("imu_read"));
    ASSERT_NE(vmin, nullptr);
    EXPECT_GT(vmin->count(), 0u);
}

TEST(TelemetryTrial, GoldenJsonlSnapshotIsReproducible)
{
    if (!telemetry::kEnabled)
        GTEST_SKIP() << "built with CULPEO_TELEMETRY=OFF";

    sched::CulpeoPolicy culpeo;
    culpeo.initialize(apps::periodicSensing());

    std::string snapshots[2];
    for (std::string &snapshot : snapshots) {
        telemetry::Telemetry sink;
        fig12Trial(culpeo, &sink);
        std::ostringstream out;
        sink.writeJsonl(out);
        snapshot = out.str();
    }
    ASSERT_FALSE(snapshots[0].empty());
    EXPECT_EQ(snapshots[0], snapshots[1])
        << "identical seeded trials must serialize identically";
    EXPECT_EQ(snapshots[0].substr(0, 5), "{\"t\":");
}

TEST(TelemetryTrial, EulerAndAnalyticBackendsAgreeOnSummary)
{
    if (!telemetry::kEnabled)
        GTEST_SKIP() << "built with CULPEO_TELEMETRY=OFF";

    sched::CulpeoPolicy culpeo;
    culpeo.initialize(apps::periodicSensing());

    telemetry::Telemetry fast_sink;
    const sched::TrialResult fast = fig12Trial(culpeo, &fast_sink);
    telemetry::Telemetry euler_sink;
    const sched::TrialResult euler =
        fig12Trial(culpeo, &euler_sink, /*force_euler=*/true);

    ASSERT_TRUE(fast.telemetry.has_value());
    ASSERT_TRUE(euler.telemetry.has_value());
    const telemetry::TelemetrySummary &f = *fast.telemetry;
    const telemetry::TelemetrySummary &e = *euler.telemetry;

    // Integer counters must match exactly: the backends make identical
    // scheduling decisions (the device-equivalence suite pins this).
    EXPECT_EQ(f.loads, e.loads);
    EXPECT_EQ(f.brownouts, e.brownouts);
    EXPECT_EQ(f.recharges, e.recharges);
    EXPECT_EQ(f.tasks_started, e.tasks_started);
    EXPECT_EQ(f.tasks_completed, e.tasks_completed);

    // Analog roll-ups agree to simulation tolerance.
    EXPECT_NEAR(f.min_margin_v, e.min_margin_v, 0.02);
    EXPECT_NEAR(f.recharge_seconds, e.recharge_seconds,
                0.05 * std::max(1.0, e.recharge_seconds));
    EXPECT_NEAR(f.sim_seconds, e.sim_seconds, 1.0);
}

TEST(TelemetryTrial, SamplingThinsTracePointsButNotCounters)
{
    if (!telemetry::kEnabled)
        GTEST_SKIP() << "built with CULPEO_TELEMETRY=OFF";

    sched::CulpeoPolicy culpeo;
    culpeo.initialize(apps::periodicSensing());

    telemetry::TelemetryConfig all_cfg;
    all_cfg.trace_capacity = 1u << 16;
    telemetry::Telemetry all(all_cfg);
    fig12Trial(culpeo, &all);

    telemetry::TelemetryConfig thin_cfg;
    thin_cfg.trace_capacity = 1u << 16;
    thin_cfg.sample_every = 8;
    telemetry::Telemetry thinned(thin_cfg);
    fig12Trial(culpeo, &thinned);

    const unsigned dense =
        countKind(all.trace(), telemetry::EventKind::VminRecord);
    const unsigned sparse =
        countKind(thinned.trace(), telemetry::EventKind::VminRecord);
    ASSERT_GT(dense, 0u);
    EXPECT_LT(sparse, dense);

    // Counters are never sampled: summaries stay exact.
    EXPECT_EQ(all.summary().loads, thinned.summary().loads);
    EXPECT_EQ(all.summary().tasks_started,
              thinned.summary().tasks_started);
}

TEST(TelemetryTrial, SweepMergesPerTrialScratchDeterministically)
{
    if (!telemetry::kEnabled)
        GTEST_SKIP() << "built with CULPEO_TELEMETRY=OFF";

    const sched::AppSpec app = apps::periodicSensing();
    sched::CulpeoPolicy culpeo;
    culpeo.initialize(app);

    auto sweep = [&](telemetry::Telemetry &sink) {
        return TrialBuilder()
            .app(app)
            .policy(culpeo)
            .duration(60.0_s)
            .trials(3)
            .telemetry(&sink)
            .runAll();
    };

    telemetry::Telemetry a;
    sweep(a);
    telemetry::Telemetry b;
    sweep(b);

    // Merged counters are identical run-to-run (the sweep may execute
    // on the thread pool, but merges happen in trial order).
    EXPECT_EQ(a.registry().counters(), b.registry().counters());
    EXPECT_NEAR(a.summary().sim_seconds, 180.0, 1.0);

    // Events from all three trials are present and tagged.
    std::set<std::uint32_t> trials;
    for (const telemetry::TraceEvent &e : a.trace().events())
        trials.insert(e.trial);
    EXPECT_EQ(trials, (std::set<std::uint32_t>{0, 1, 2}));
}

} // namespace
