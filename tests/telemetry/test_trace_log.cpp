/** @file Unit tests for the ring-buffered TraceLog and its exporters. */

#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/trace_log.hpp"

namespace {

using namespace culpeo;
using telemetry::EventKind;
using telemetry::TraceEvent;
using telemetry::TraceLog;

TraceEvent
at(double t, EventKind kind, std::uint32_t name_id = 0)
{
    TraceEvent e;
    e.time_s = t;
    e.kind = kind;
    e.name_id = name_id;
    return e;
}

TEST(TraceLog, InternIsIdempotentAndZeroIsEmpty)
{
    TraceLog log(8);
    EXPECT_EQ(log.label(0), "");
    const std::uint32_t a = log.intern("imu");
    const std::uint32_t b = log.intern("ble");
    EXPECT_EQ(log.intern("imu"), a);
    EXPECT_NE(a, b);
    EXPECT_NE(a, 0u);
    EXPECT_EQ(log.label(a), "imu");
    EXPECT_EQ(log.label(b), "ble");
    EXPECT_EQ(log.label(999), "");
    EXPECT_EQ(log.intern(""), 0u);
}

TEST(TraceLog, RingWrapsKeepingNewestOldestFirst)
{
    TraceLog log(4);
    for (int i = 0; i < 10; ++i)
        log.record(at(double(i), EventKind::TaskStart));
    EXPECT_EQ(log.recorded(), 10u);
    EXPECT_EQ(log.dropped(), 6u);
    const std::vector<TraceEvent> events = log.events();
    ASSERT_EQ(events.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(events[i].time_s, double(6 + i));
}

TEST(TraceLog, ClearDropsEventsButKeepsLabels)
{
    TraceLog log(4);
    const std::uint32_t id = log.intern("task");
    log.record(at(1.0, EventKind::TaskStart, id));
    log.clear();
    EXPECT_TRUE(log.events().empty());
    EXPECT_EQ(log.intern("task"), id);
}

TEST(TraceLog, AppendReInternsLabelsAndKeepsTrialIds)
{
    // Sink and source intern the same names in different orders, so the
    // raw ids disagree; append() must translate through the labels.
    TraceLog sink(8);
    sink.intern("alpha");
    const std::uint32_t sink_beta = sink.intern("beta");

    TraceLog source(8);
    const std::uint32_t src_beta = source.intern("beta");
    EXPECT_NE(src_beta, sink_beta);
    TraceEvent e = at(2.0, EventKind::TaskEnd, src_beta);
    e.trial = 3;
    source.record(e);

    sink.append(source);
    const std::vector<TraceEvent> events = sink.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(sink.label(events[0].name_id), "beta");
    EXPECT_EQ(events[0].trial, 3u);
}

TEST(TraceLog, JsonlFormatIsStable)
{
    TraceLog log(8);
    const std::uint32_t imu = log.intern("imu");

    TraceEvent start = at(1.5, EventKind::TaskStart, imu);
    start.voltage_v = 2.25F;
    start.value = 1.0F;
    log.record(start);

    TraceEvent end = at(1.625, EventKind::TaskEnd, imu);
    end.voltage_v = 2.0F;
    end.value = 1.9375F;
    end.flag = true;
    end.trial = 2;
    log.record(end);

    log.record(at(2.0, EventKind::BrownOut));

    std::ostringstream out;
    log.writeJsonl(out);
    EXPECT_EQ(out.str(),
              "{\"t\":1.5,\"trial\":0,\"kind\":\"task_start\","
              "\"name\":\"imu\",\"v\":2.25,\"value\":1,"
              "\"flag\":false}\n"
              "{\"t\":1.625,\"trial\":2,\"kind\":\"task_end\","
              "\"name\":\"imu\",\"v\":2,\"value\":1.9375,"
              "\"flag\":true}\n"
              "{\"t\":2,\"trial\":0,\"kind\":\"brown_out\",\"v\":0,"
              "\"value\":0,\"flag\":false}\n");

    std::ostringstream csv;
    log.writeCsv(csv);
    EXPECT_EQ(csv.str().substr(0, csv.str().find('\n')),
              "t,trial,kind,name,v,value,flag");
}

TEST(TraceLog, EventKindNamesAreStable)
{
    EXPECT_STREQ(telemetry::eventKindName(EventKind::TaskStart),
                 "task_start");
    EXPECT_STREQ(telemetry::eventKindName(EventKind::VminRecord),
                 "vmin_record");
    EXPECT_STREQ(telemetry::eventKindName(EventKind::RechargeEnter),
                 "recharge_enter");
    EXPECT_STREQ(telemetry::eventKindName(EventKind::RechargeExit),
                 "recharge_exit");
    EXPECT_STREQ(telemetry::eventKindName(EventKind::VsafeUpdate),
                 "vsafe_update");
    EXPECT_STREQ(telemetry::eventKindName(EventKind::FaultInjected),
                 "fault_injected");
}

} // namespace
