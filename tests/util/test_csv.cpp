/** @file Unit tests for the CSV writer and the defensive reader. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/csv.hpp"
#include "util/expected.hpp"
#include "util/logging.hpp"

namespace {

using culpeo::util::CsvError;
using culpeo::util::CsvErrorCode;
using culpeo::util::CsvRow;
using culpeo::util::csvErrorName;
using culpeo::util::csvNumber;
using culpeo::util::csvSplitLine;
using culpeo::util::CsvWriter;
using culpeo::util::csvEscape;
using culpeo::util::Expected;
using culpeo::util::readCsvRows;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

class CsvTest : public ::testing::Test
{
  protected:
    std::string path_;

    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "culpeo_csv_test.csv";
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }
};

TEST_F(CsvTest, WritesHeaderAndRows)
{
    {
        CsvWriter csv(path_, {"a", "b"});
        csv.row(1, 2.5);
        csv.row("x", "y");
    }
    EXPECT_EQ(slurp(path_), "a,b\n1,2.5\nx,y\n");
}

TEST_F(CsvTest, InactiveWriterDropsRows)
{
    CsvWriter csv;
    EXPECT_FALSE(csv.active());
    csv.row(1, 2, 3); // Must not crash.
}

TEST_F(CsvTest, UnwritablePathIsFatal)
{
    EXPECT_THROW(CsvWriter("/nonexistent-dir/x/y.csv", {"a"}),
                 culpeo::log::FatalError);
}

TEST_F(CsvTest, ForBenchInactiveWithoutEnv)
{
    unsetenv("CULPEO_BENCH_CSV");
    CsvWriter csv = CsvWriter::forBench("some_bench", {"a"});
    EXPECT_FALSE(csv.active());
}

TEST_F(CsvTest, ForBenchWritesIntoEnvDirectory)
{
    const std::string dir = ::testing::TempDir();
    setenv("CULPEO_BENCH_CSV", dir.c_str(), 1);
    {
        CsvWriter csv = CsvWriter::forBench("bench_x", {"h"});
        EXPECT_TRUE(csv.active());
        csv.row(42);
    }
    unsetenv("CULPEO_BENCH_CSV");
    EXPECT_EQ(slurp(dir + "/bench_x.csv"), "h\n42\n");
    std::remove((dir + "/bench_x.csv").c_str());
}

TEST(CsvEscape, PlainStringsPassThrough)
{
    EXPECT_EQ(csvEscape("hello"), "hello");
}

TEST(CsvEscape, SeparatorsAndQuotesAreQuoted)
{
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvSplitLine, PlainAndQuotedCells)
{
    Expected<std::vector<std::string>, CsvError> cells =
        csvSplitLine("a,b,c");
    ASSERT_TRUE(cells.ok());
    EXPECT_EQ(*cells, (std::vector<std::string>{"a", "b", "c"}));

    // Round trip through csvEscape.
    cells = csvSplitLine(csvEscape("a,b") + "," + csvEscape("say \"hi\""));
    ASSERT_TRUE(cells.ok());
    EXPECT_EQ(*cells, (std::vector<std::string>{"a,b", "say \"hi\""}));

    cells = csvSplitLine("x,,y,");
    ASSERT_TRUE(cells.ok());
    EXPECT_EQ(*cells, (std::vector<std::string>{"x", "", "y", ""}));
}

TEST(CsvSplitLine, MalformedQuotingIsTyped)
{
    Expected<std::vector<std::string>, CsvError> cells =
        csvSplitLine("\"never closed", 7);
    ASSERT_FALSE(cells.ok());
    EXPECT_EQ(cells.error().code, CsvErrorCode::MalformedRow);
    EXPECT_EQ(cells.error().line, 7U);

    cells = csvSplitLine("\"ok\"junk,b", 9);
    ASSERT_FALSE(cells.ok());
    EXPECT_EQ(cells.error().code, CsvErrorCode::MalformedRow);
}

TEST(CsvNumber, StrictWholeCellParse)
{
    ASSERT_TRUE(csvNumber("2.5e3").ok());
    EXPECT_DOUBLE_EQ(*csvNumber("2.5e3"), 2500.0);
    EXPECT_DOUBLE_EQ(*csvNumber("-0.25"), -0.25);

    for (const char *bad : {"", "x", "1.5x", "1.5 ", " 1.5", "0.005e",
                            "nan", "inf", "1e999"}) {
        const Expected<double, CsvError> value = csvNumber(bad, 3);
        ASSERT_FALSE(value.ok()) << "'" << bad << "'";
        EXPECT_EQ(value.error().code, CsvErrorCode::BadNumber)
            << "'" << bad << "'";
        EXPECT_EQ(value.error().line, 3U);
    }
}

class CsvReaderTest : public CsvTest
{};

TEST_F(CsvReaderTest, ReadsRowsWithSourceLineNumbers)
{
    {
        std::ofstream out(path_);
        out << "h1,h2\n\n1,2\n\n\n3,4\n";
    }
    const Expected<std::vector<CsvRow>, CsvError> rows =
        readCsvRows(path_, 2);
    ASSERT_TRUE(rows.ok()) << rows.error().message();
    ASSERT_EQ(rows->size(), 3U);
    EXPECT_EQ((*rows)[0].line, 1U);
    EXPECT_EQ((*rows)[1].line, 3U); // Blank lines counted, not kept.
    EXPECT_EQ((*rows)[2].line, 6U);
    EXPECT_EQ((*rows)[2].cells,
              (std::vector<std::string>{"3", "4"}));
}

TEST_F(CsvReaderTest, EveryMalformedClassIsTyped)
{
    const Expected<std::vector<CsvRow>, CsvError> missing =
        readCsvRows("/nonexistent/rows.csv");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().code, CsvErrorCode::Io);

    {
        std::ofstream out(path_);
        out << "\n\n";
    }
    const Expected<std::vector<CsvRow>, CsvError> empty =
        readCsvRows(path_);
    ASSERT_FALSE(empty.ok());
    EXPECT_EQ(empty.error().code, CsvErrorCode::Empty);

    // A row that lost fields (the truncated-download case).
    {
        std::ofstream out(path_);
        out << "a,b,c\n1,2,3\n4,5\n";
    }
    const Expected<std::vector<CsvRow>, CsvError> shorted =
        readCsvRows(path_, 3);
    ASSERT_FALSE(shorted.ok());
    EXPECT_EQ(shorted.error().code, CsvErrorCode::ShortRow);
    EXPECT_EQ(shorted.error().line, 3U);

    {
        std::ofstream out(path_);
        out << "a,\"bad\n";
    }
    const Expected<std::vector<CsvRow>, CsvError> malformed =
        readCsvRows(path_);
    ASSERT_FALSE(malformed.ok());
    EXPECT_EQ(malformed.error().code, CsvErrorCode::MalformedRow);
}

TEST(CsvErrorMessage, NamesCodeLineAndDetail)
{
    const CsvError error{CsvErrorCode::ShortRow, 12, "needs 3 fields"};
    EXPECT_EQ(error.message(), "short_row at line 12: needs 3 fields");
    const CsvError whole{CsvErrorCode::Empty, 0, "no rows"};
    EXPECT_EQ(whole.message(), "empty: no rows");
    EXPECT_STREQ(csvErrorName(CsvErrorCode::BadValue), "bad_value");
}

} // namespace
