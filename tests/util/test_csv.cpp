/** @file Unit tests for the CSV writer. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/logging.hpp"

namespace {

using culpeo::util::CsvWriter;
using culpeo::util::csvEscape;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

class CsvTest : public ::testing::Test
{
  protected:
    std::string path_;

    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "culpeo_csv_test.csv";
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }
};

TEST_F(CsvTest, WritesHeaderAndRows)
{
    {
        CsvWriter csv(path_, {"a", "b"});
        csv.row(1, 2.5);
        csv.row("x", "y");
    }
    EXPECT_EQ(slurp(path_), "a,b\n1,2.5\nx,y\n");
}

TEST_F(CsvTest, InactiveWriterDropsRows)
{
    CsvWriter csv;
    EXPECT_FALSE(csv.active());
    csv.row(1, 2, 3); // Must not crash.
}

TEST_F(CsvTest, UnwritablePathIsFatal)
{
    EXPECT_THROW(CsvWriter("/nonexistent-dir/x/y.csv", {"a"}),
                 culpeo::log::FatalError);
}

TEST_F(CsvTest, ForBenchInactiveWithoutEnv)
{
    unsetenv("CULPEO_BENCH_CSV");
    CsvWriter csv = CsvWriter::forBench("some_bench", {"a"});
    EXPECT_FALSE(csv.active());
}

TEST_F(CsvTest, ForBenchWritesIntoEnvDirectory)
{
    const std::string dir = ::testing::TempDir();
    setenv("CULPEO_BENCH_CSV", dir.c_str(), 1);
    {
        CsvWriter csv = CsvWriter::forBench("bench_x", {"h"});
        EXPECT_TRUE(csv.active());
        csv.row(42);
    }
    unsetenv("CULPEO_BENCH_CSV");
    EXPECT_EQ(slurp(dir + "/bench_x.csv"), "h\n42\n");
    std::remove((dir + "/bench_x.csv").c_str());
}

TEST(CsvEscape, PlainStringsPassThrough)
{
    EXPECT_EQ(csvEscape("hello"), "hello");
}

TEST(CsvEscape, SeparatorsAndQuotesAreQuoted)
{
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvEscape("line\nbreak"), "\"line\nbreak\"");
}

} // namespace
