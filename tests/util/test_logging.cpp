/** @file Unit tests for the fatal/panic/warn reporting helpers. */

#include <gtest/gtest.h>

#include "util/logging.hpp"

namespace {

using namespace culpeo;

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(culpeo::log::fatal("bad input: ", 42), culpeo::log::FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(culpeo::log::panic("invariant broken"), culpeo::log::PanicError);
}

TEST(Logging, FatalMessageContainsFormattedArgs)
{
    try {
        culpeo::log::fatal("value was ", 7, " not ", 8);
        FAIL() << "fatal did not throw";
    } catch (const culpeo::log::FatalError &err) {
        EXPECT_STREQ(err.what(), "fatal: value was 7 not 8");
    }
}

TEST(Logging, FatalIfOnlyThrowsWhenConditionHolds)
{
    EXPECT_NO_THROW(culpeo::log::fatalIf(false, "should not fire"));
    EXPECT_THROW(culpeo::log::fatalIf(true, "fires"), culpeo::log::FatalError);
}

TEST(Logging, PanicIfOnlyThrowsWhenConditionHolds)
{
    EXPECT_NO_THROW(culpeo::log::panicIf(false, "should not fire"));
    EXPECT_THROW(culpeo::log::panicIf(true, "fires"), culpeo::log::PanicError);
}

TEST(Logging, FatalErrorIsRuntimeErrorPanicIsLogicError)
{
    EXPECT_THROW(culpeo::log::fatal("x"), std::runtime_error);
    EXPECT_THROW(culpeo::log::panic("x"), std::logic_error);
}

TEST(Logging, VerboseToggleRoundTrips)
{
    const bool before = culpeo::log::verbose();
    culpeo::log::setVerbose(false);
    EXPECT_FALSE(culpeo::log::verbose());
    culpeo::log::setVerbose(true);
    EXPECT_TRUE(culpeo::log::verbose());
    culpeo::log::setVerbose(before);
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    culpeo::log::setVerbose(false); // Keep test output clean.
    EXPECT_NO_THROW(culpeo::log::warn("warning ", 1));
    EXPECT_NO_THROW(culpeo::log::inform("status ", 2));
    culpeo::log::setVerbose(true);
}

} // namespace
