/**
 * @file
 * Unit tests for the sweep executor: result ordering is independent of
 * scheduling, exceptions propagate like a serial loop's, seeded work is
 * bit-identical across thread counts, and nested regions run inline.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/parallel.hpp"
#include "util/random.hpp"

namespace {

using culpeo::util::ThreadPool;

TEST(ThreadPool, MapPreservesOrder)
{
    ThreadPool pool(4);
    std::vector<int> items(257);
    std::iota(items.begin(), items.end(), 0);
    const std::vector<int> doubled =
        pool.parallelMap(items, [](const int &v) { return 2 * v; });
    ASSERT_EQ(doubled.size(), items.size());
    for (std::size_t i = 0; i < items.size(); ++i)
        EXPECT_EQ(doubled[i], int(2 * i));
}

TEST(ThreadPool, RunsEveryItemExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> counts(1000);
    pool.parallelFor(counts.size(),
                     [&](std::size_t i) { counts[i].fetch_add(1); });
    for (const auto &c : counts)
        EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, PropagatesLowestIndexedException)
{
    ThreadPool pool(4);
    // Several items throw; the caller must see the lowest index, and
    // every non-throwing item must still have run (failure of one
    // scenario must not silently skip the rest of a sweep).
    std::vector<std::atomic<int>> ran(64);
    try {
        pool.parallelFor(ran.size(), [&](std::size_t i) {
            ran[i].fetch_add(1);
            if (i == 7 || i == 23 || i == 55)
                throw std::runtime_error("item " + std::to_string(i));
        });
        FAIL() << "exception was swallowed";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "item 7");
    }
    for (const auto &c : ran)
        EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, SerialPoolMatchesExceptionContract)
{
    ThreadPool pool(1); // No workers: plain inline loop.
    std::vector<std::atomic<int>> ran(16);
    try {
        pool.parallelFor(ran.size(), [&](std::size_t i) {
            ran[i].fetch_add(1);
            if (i >= 3)
                throw std::runtime_error("item " + std::to_string(i));
        });
        FAIL() << "exception was swallowed";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "item 3");
    }
    for (const auto &c : ran)
        EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, SeededWorkIsIdenticalAcrossThreadCounts)
{
    // The determinism contract the fuzz harness relies on: per-item
    // randomness derives only from the item index, so any thread count
    // produces the same result vector.
    std::vector<std::uint64_t> seeds(200);
    std::iota(seeds.begin(), seeds.end(), 0x9e3779b9ULL);
    const auto draw = [](const std::uint64_t &seed) {
        culpeo::util::Rng rng(seed);
        double acc = 0.0;
        for (int i = 0; i < 10; ++i)
            acc += rng.uniform(0.0, 1.0);
        return acc;
    };

    ThreadPool serial(1);
    ThreadPool wide(8);
    const auto expected = serial.parallelMap(seeds, draw);
    const auto actual = wide.parallelMap(seeds, draw);
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(expected[i], actual[i]) << "index " << i;
}

TEST(ThreadPool, NestedRegionsRunInline)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> counts(100);
    // A nested parallelFor must not deadlock waiting for workers that
    // are all busy in the outer region; it runs inline on the caller.
    pool.parallelFor(10, [&](std::size_t outer) {
        pool.parallelFor(10, [&](std::size_t inner) {
            counts[outer * 10 + inner].fetch_add(1);
        });
    });
    for (const auto &c : counts)
        EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, EmptyAndSingleItemJobs)
{
    ThreadPool pool(4);
    pool.parallelFor(0, [](std::size_t) { FAIL(); });
    int ran = 0;
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++ran;
    });
    EXPECT_EQ(ran, 1);
}

TEST(ThreadPool, ReusableAcrossManyJobs)
{
    ThreadPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::atomic<int> sum{0};
        pool.parallelFor(round + 1,
                         [&](std::size_t i) { sum.fetch_add(int(i)); });
        EXPECT_EQ(sum.load(), round * (round + 1) / 2);
    }
}

TEST(ThreadPool, ThreadCountReflectsConstruction)
{
    EXPECT_EQ(ThreadPool(1).threadCount(), 1u);
    EXPECT_EQ(ThreadPool(4).threadCount(), 4u);
    EXPECT_GE(ThreadPool::shared().threadCount(), 1u);
}

} // namespace
