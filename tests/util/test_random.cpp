/** @file Unit tests for the deterministic RNG and its distributions. */

#include <gtest/gtest.h>

#include "util/logging.hpp"
#include "util/random.hpp"

namespace {

using culpeo::util::Rng;

TEST(Rng, SameSeedSameStream)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedStillProducesEntropy)
{
    Rng rng(0);
    EXPECT_NE(rng.next(), 0u);
    EXPECT_NE(rng.next(), rng.next());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.0, 5.0);
        EXPECT_GE(u, -2.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanIsCentered)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntWithinBound)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, UniformIntRejectsZero)
{
    Rng rng(13);
    EXPECT_THROW(rng.uniformInt(0), culpeo::log::FatalError);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(45.0);
    EXPECT_NEAR(sum / n, 45.0, 1.0);
}

TEST(Rng, ExponentialIsNonNegative)
{
    Rng rng(19);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, ExponentialRejectsNonPositiveMean)
{
    Rng rng(19);
    EXPECT_THROW(rng.exponential(0.0), culpeo::log::FatalError);
    EXPECT_THROW(rng.exponential(-1.0), culpeo::log::FatalError);
}

TEST(Rng, GaussianMomentsMatch)
{
    Rng rng(23);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian(10.0, 2.0);
        sum += g;
        sq += g * g;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.1);
}

} // namespace
