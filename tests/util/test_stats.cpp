/** @file Unit tests for the descriptive-statistics accumulator. */

#include <gtest/gtest.h>

#include <cmath>

#include "util/logging.hpp"
#include "util/stats.hpp"

namespace {

using culpeo::util::Summary;
using culpeo::util::fraction;

TEST(Summary, EmptySummaryBasics)
{
    Summary s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.sum(), 0.0);
}

TEST(Summary, EmptyQueriesAreFatal)
{
    Summary s;
    EXPECT_THROW(s.mean(), culpeo::log::FatalError);
    EXPECT_THROW(s.min(), culpeo::log::FatalError);
    EXPECT_THROW(s.max(), culpeo::log::FatalError);
    EXPECT_THROW(s.percentile(50.0), culpeo::log::FatalError);
}

TEST(Summary, MeanMinMaxSum)
{
    Summary s;
    for (double x : {3.0, 1.0, 2.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_DOUBLE_EQ(s.sum(), 6.0);
    EXPECT_EQ(s.count(), 3u);
}

TEST(Summary, StddevOfKnownSet)
{
    Summary s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    // Sample stddev with n-1: variance = 32/7.
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Summary, StddevOfSingletonIsZero)
{
    Summary s;
    s.add(5.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, MedianOfOddAndEvenCounts)
{
    Summary odd;
    for (double x : {5.0, 1.0, 3.0})
        odd.add(x);
    EXPECT_DOUBLE_EQ(odd.median(), 3.0);

    Summary even;
    for (double x : {4.0, 1.0, 3.0, 2.0})
        even.add(x);
    EXPECT_DOUBLE_EQ(even.median(), 2.5);
}

TEST(Summary, PercentileEndpoints)
{
    Summary s;
    for (double x : {10.0, 20.0, 30.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 30.0);
}

TEST(Summary, PercentileInterpolates)
{
    Summary s;
    for (double x : {0.0, 10.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.percentile(25.0), 2.5);
    EXPECT_DOUBLE_EQ(s.percentile(75.0), 7.5);
}

TEST(Summary, PercentileRangeValidated)
{
    Summary s;
    s.add(1.0);
    EXPECT_THROW(s.percentile(-1.0), culpeo::log::FatalError);
    EXPECT_THROW(s.percentile(101.0), culpeo::log::FatalError);
}

TEST(Summary, PercentileValidAfterLaterAdds)
{
    Summary s;
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.median(), 2.0);
    s.add(1.0); // Must invalidate the cached sorted copy.
    EXPECT_DOUBLE_EQ(s.median(), 1.5);
}

TEST(Fraction, HandlesZeroTotal)
{
    EXPECT_EQ(fraction(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(fraction(1, 4), 0.25);
}

} // namespace
