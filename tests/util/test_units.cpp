/** @file Unit tests for the strong physical-quantity types. */

#include <gtest/gtest.h>

#include <sstream>

#include "util/units.hpp"

namespace {

using namespace culpeo::units;
using namespace culpeo::units::literals;

TEST(Units, DefaultConstructedIsZero)
{
    Volts v;
    EXPECT_EQ(v.value(), 0.0);
}

TEST(Units, SameTypeArithmetic)
{
    const Volts a(2.0);
    const Volts b(0.5);
    EXPECT_DOUBLE_EQ((a + b).value(), 2.5);
    EXPECT_DOUBLE_EQ((a - b).value(), 1.5);
    EXPECT_DOUBLE_EQ((-a).value(), -2.0);
    EXPECT_DOUBLE_EQ((a * 3.0).value(), 6.0);
    EXPECT_DOUBLE_EQ((3.0 * a).value(), 6.0);
    EXPECT_DOUBLE_EQ((a / 4.0).value(), 0.5);
}

TEST(Units, CompoundAssignment)
{
    Volts v(1.0);
    v += Volts(0.5);
    EXPECT_DOUBLE_EQ(v.value(), 1.5);
    v -= Volts(1.0);
    EXPECT_DOUBLE_EQ(v.value(), 0.5);
    v *= 4.0;
    EXPECT_DOUBLE_EQ(v.value(), 2.0);
}

TEST(Units, SameTypeRatioIsDimensionless)
{
    const double ratio = Volts(3.0) / Volts(1.5);
    EXPECT_DOUBLE_EQ(ratio, 2.0);
}

TEST(Units, Comparisons)
{
    EXPECT_LT(Volts(1.0), Volts(2.0));
    EXPECT_GT(Volts(2.0), Volts(1.0));
    EXPECT_EQ(Volts(1.0), Volts(1.0));
    EXPECT_LE(Volts(1.0), Volts(1.0));
}

TEST(Units, OhmsLaw)
{
    const Amps i = Volts(10.0) / Ohms(5.0);
    EXPECT_DOUBLE_EQ(i.value(), 2.0);
    const Volts v = Amps(2.0) * Ohms(5.0);
    EXPECT_DOUBLE_EQ(v.value(), 10.0);
    const Ohms r = resistanceOf(Volts(10.0), Amps(2.0));
    EXPECT_DOUBLE_EQ(r.value(), 5.0);
}

TEST(Units, PowerRelations)
{
    const Watts p = Volts(2.0) * Amps(3.0);
    EXPECT_DOUBLE_EQ(p.value(), 6.0);
    EXPECT_DOUBLE_EQ((p / Volts(2.0)).value(), 3.0);
    EXPECT_DOUBLE_EQ((p / Amps(3.0)).value(), 2.0);
}

TEST(Units, EnergyRelations)
{
    const Joules e = Watts(2.0) * Seconds(3.0);
    EXPECT_DOUBLE_EQ(e.value(), 6.0);
    EXPECT_DOUBLE_EQ((e / Seconds(3.0)).value(), 2.0);
    EXPECT_DOUBLE_EQ((e / Watts(2.0)).value(), 3.0);
}

TEST(Units, ChargeRelations)
{
    const Coulombs q = Amps(2.0) * Seconds(3.0);
    EXPECT_DOUBLE_EQ(q.value(), 6.0);
    EXPECT_DOUBLE_EQ((q / Seconds(3.0)).value(), 2.0);
    const Farads c(2.0);
    EXPECT_DOUBLE_EQ((c * Volts(3.0)).value(), 6.0);
    EXPECT_DOUBLE_EQ((q / c).value(), 3.0);
}

TEST(Units, FrequencyInversion)
{
    const Hertz f = frequencyOf(Seconds(0.01));
    EXPECT_DOUBLE_EQ(f.value(), 100.0);
    EXPECT_DOUBLE_EQ(periodOf(f).value(), 0.01);
}

TEST(Units, CapacitorEnergyRoundTrip)
{
    const Farads c(45e-3);
    const Volts v(2.5);
    const Joules e = capacitorEnergy(c, v);
    EXPECT_DOUBLE_EQ(e.value(), 0.5 * 45e-3 * 2.5 * 2.5);
    EXPECT_NEAR(capacitorVoltage(c, e).value(), 2.5, 1e-12);
}

TEST(Units, CapacitorVoltageOfNonPositiveEnergyIsZero)
{
    EXPECT_EQ(capacitorVoltage(Farads(1.0), Joules(0.0)).value(), 0.0);
    EXPECT_EQ(capacitorVoltage(Farads(1.0), Joules(-1.0)).value(), 0.0);
}

TEST(Units, Literals)
{
    EXPECT_DOUBLE_EQ((2.5_V).value(), 2.5);
    EXPECT_DOUBLE_EQ((100.0_mV).value(), 0.1);
    EXPECT_DOUBLE_EQ((50.0_mA).value(), 0.05);
    EXPECT_DOUBLE_EQ((20.0_nA).value(), 20e-9);
    EXPECT_DOUBLE_EQ((10.0_Ohm).value(), 10.0);
    EXPECT_DOUBLE_EQ((10.0_mOhm).value(), 0.01);
    EXPECT_DOUBLE_EQ((45.0_mF).value(), 0.045);
    EXPECT_DOUBLE_EQ((100.0_ms).value(), 0.1);
    EXPECT_DOUBLE_EQ((125.0_kHz).value(), 125e3);
    EXPECT_DOUBLE_EQ((180.0_uW).value(), 180e-6);
    EXPECT_DOUBLE_EQ((140.0_nW).value(), 140e-9);
}

TEST(Units, StreamInsertionPrintsRawValue)
{
    std::ostringstream os;
    os << Volts(1.25);
    EXPECT_EQ(os.str(), "1.25");
}

} // namespace
